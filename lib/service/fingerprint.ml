(* Content-addressed job identity. See the .mli for the
   inclusion/exclusion contract; the digest discipline mirrors
   Merge_flow's checkpoint fingerprint (Digest over a Marshal of plain
   data). *)

let schema_version = "modemerge-service/1"

(* The checkpoint schema generation tracks result-shaping changes to
   the pipeline (stage payload layout changes exactly when the stages'
   semantics do), so it doubles as the cache's code version. *)
let code_version =
  Printf.sprintf "checkpoint-%d" Mm_core.Checkpoint.schema_version

let canonicalize text =
  if not (String.contains text '\r') then text
  else begin
    let b = Buffer.create (String.length text) in
    let n = String.length text in
    let rec go i =
      if i < n then
        if text.[i] = '\r' && i + 1 < n && text.[i + 1] = '\n' then begin
          Buffer.add_char b '\n';
          go (i + 2)
        end
        else begin
          Buffer.add_char b text.[i];
          go (i + 1)
        end
    in
    go 0;
    Buffer.contents b
  end

let compute ~design_format ~design_text ~sources ~policy ~check_equivalence
    ~tolerance ~annotate =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( schema_version,
            code_version,
            design_format,
            canonicalize design_text,
            List.map (fun (n, t) -> n, canonicalize t) sources,
            (policy, check_equivalence, tolerance, annotate) )
          []))
