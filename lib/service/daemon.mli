(** The merge service daemon: HTTP glue between {!Mm_util.Serve}'s
    telemetry plane and the {!Scheduler}/{!Rcache} pair.

    {!start} brings up one {!Mm_util.Serve} server with the job plane
    mounted as registered routes, so every telemetry endpoint
    ([/metrics], [/healthz], [/events], …) is served from the same
    port as the job API:

    - [POST /jobs] — submit a merge job ({!Job.spec_of_json} body).
      202 + status JSON when queued or coalesced, 200 when completed
      on the spot from the result cache, 400 on a malformed spec,
      413 when the body exceeds the configured limit, 429 with
      [Retry-After] when the queue is full;
    - [GET /jobs] — every job, newest last (JSON array);
    - [GET /jobs/ID] — one job's status JSON: state, cache origin
      ([computed]/[hit]/[coalesced]), priority, fingerprint, wall
      time, and the result summary + file manifest once done;
    - [GET /jobs/ID/result] — the result manifest (files with sizes,
      summary, origin). 409 while the job is not [done];
    - [GET /jobs/ID/result/FILE] — one merged SDC, raw bytes —
      byte-identical to the one-shot CLI's file of the same name;
    - [DELETE /jobs/ID] — cancel (prompt for queued jobs, cooperative
      for the running one). 409 when already completed;
    - [GET /queue] — queue counts, capacity and per-job one-liners;
    - [GET /cache/stats] — {!Rcache.stats_json}.

    Everything is JSON except the raw result files. Unknown ids are
    404. *)

type config = {
  dc_addr : string;
  dc_port : int;  (** 0 asks the OS; read the bound port from {!port} *)
  dc_jobs : int option;  (** per-merge pool size *)
  dc_queue_cap : int;
  dc_cache_entries : int;
  dc_cache_dir : string option;  (** enables the on-disk result store *)
  dc_max_body_bytes : int;  (** [POST /jobs] body cap *)
}

val default_config : config
(** 127.0.0.1:0, default pool size, queue cap 16, 64 cache entries,
    memory-only cache, 8 MiB body cap. *)

type t

val start : config -> t
(** Mount the job routes, start serving and return. The daemon runs on
    its own domains (HTTP + dispatcher); the calling domain is free.
    @raise Failure when the address cannot be bound. *)

val addr : t -> string
val port : t -> int
val scheduler : t -> Scheduler.t
val cache : t -> Rcache.t

val stop : t -> unit
(** Unmount the routes, cancel outstanding jobs, stop the scheduler
    and the HTTP server. Idempotent. *)
