(** Content-addressed job identity for the merge service.

    Two submissions share a fingerprint exactly when the merge is
    guaranteed to produce the same bytes: same design, same sources
    (names and canonicalized text, in submission order), same
    result-shaping options, same code version. The scheduler coalesces
    and the result cache keys on this digest.

    What is {e excluded} is as much a contract as what is included:

    - the pool size ([--jobs]) — results are jobs-invariant
      (byte-identical at any parallelism), so a result computed at
      [jobs=4] legitimately serves a [jobs=1] submission;
    - budgets/deadlines — a result is a result however long it was
      allowed to take (a budget-degraded run never reaches the cache:
      the scheduler refuses to store degraded outcomes);
    - priority — scheduling order does not shape bytes.

    Canonicalization is deliberately minimal: CRLF line endings
    normalize to LF {e for keying only} — the merge itself always runs
    on the text exactly as submitted, so caching cannot perturb
    output. Anything beyond that (whitespace, comments) changes the
    fingerprint; false misses are safe, false hits are not. *)

val schema_version : string
(** The fingerprint schema, e.g. ["modemerge-service/1"]. Part of the
    digested material: bumping it invalidates every cached result. *)

val code_version : string
(** The result-shaping code version baked into every fingerprint —
    currently the checkpoint schema generation. Bump it (via
    {!Mm_core.Checkpoint.schema_version}) whenever merge semantics
    change, and every stale cache entry silently misses. *)

val canonicalize : string -> string
(** CRLF -> LF, for keying only. *)

val compute :
  design_format:string ->
  design_text:string ->
  sources:(string * string) list ->
  policy:string ->
  check_equivalence:bool ->
  tolerance:(float * float) option ->
  annotate:bool ->
  string
(** The hex digest over (schema, code version, design, canonicalized
    sources in order, options). [tolerance] is [(rel, abs)]. *)
