(* HTTP surface of the merge service. Handlers run on the Httpd
   domain; everything they touch (scheduler, cache, observability
   registries) is mutex- or atomic-protected. *)

module Httpd = Mm_util.Httpd
module Serve = Mm_util.Serve
module Metrics = Mm_util.Metrics

type config = {
  dc_addr : string;
  dc_port : int;
  dc_jobs : int option;
  dc_queue_cap : int;
  dc_cache_entries : int;
  dc_cache_dir : string option;
  dc_max_body_bytes : int;
}

let default_config =
  {
    dc_addr = "127.0.0.1";
    dc_port = 0;
    dc_jobs = None;
    dc_queue_cap = 16;
    dc_cache_entries = 64;
    dc_cache_dir = None;
    dc_max_body_bytes = 8 * 1024 * 1024;
  }

type t = {
  mutable server : Serve.t option;  (* None only during start *)
  sched : Scheduler.t;
  rcache : Rcache.t;
  mutable stopped : bool;
}

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)

let json rs_status body =
  Httpd.respond ~status:rs_status ~content_type:"application/json"
    (body ^ "\n")

let error status msg =
  json status
    (Printf.sprintf {|{"error":"%s"}|} (Metrics.json_escape msg))

let state_error (v : Scheduler.view) =
  match v.Scheduler.v_state with
  | Job.Failed msg | Job.Cancelled msg ->
    Printf.sprintf {|,"error":"%s"|} (Metrics.json_escape msg)
  | _ -> ""

let files_json (o : Job.outcome) =
  String.concat ","
    (List.map
       (fun (name, text) ->
         Printf.sprintf {|{"name":"%s","bytes":%d}|}
           (Metrics.json_escape name) (String.length text))
       o.Job.oc_files)

let view_json (v : Scheduler.view) =
  let result =
    match v.Scheduler.v_outcome with
    | None -> ""
    | Some o ->
      Printf.sprintf {|,"summary":%s,"files":[%s]|}
        (Job.summary_json o.Job.oc_summary)
        (files_json o)
  in
  Printf.sprintf
    {|{"id":"%s","state":"%s","cache":%s,"priority":%d,"fingerprint":"%s","sources":%d,"wall_s":%s%s%s}|}
    v.Scheduler.v_id
    (Job.state_to_string v.Scheduler.v_state)
    (match v.Scheduler.v_origin with
    | None -> "null"
    | Some o -> Printf.sprintf {|"%s"|} (Job.origin_to_string o))
    v.Scheduler.v_priority v.Scheduler.v_fp v.Scheduler.v_n_sources
    (match v.Scheduler.v_wall_s with
    | None -> "null"
    | Some w -> Metrics.json_float w)
    (state_error v) result

(* ------------------------------------------------------------------ *)
(* Routes                                                              *)

(* "/jobs/j3/result/merged_0.sdc" -> ["j3"; "result"; "merged_0.sdc"] *)
let subpath ~prefix path =
  let rest =
    String.sub path (String.length prefix)
      (String.length path - String.length prefix)
  in
  List.filter (fun s -> s <> "") (String.split_on_char '/' rest)

let jobs_handler t (rq : Httpd.request) =
  match rq.Httpd.rq_method, subpath ~prefix:"/jobs" rq.Httpd.rq_path with
  | "POST", [] -> (
    match Job.spec_of_json rq.Httpd.rq_body with
    | Error msg -> error 400 msg
    | Ok spec -> (
      match Scheduler.submit t.sched spec with
      | Scheduler.Queue_full retry_s ->
        Httpd.respond ~status:429 ~content_type:"application/json"
          ~headers:[ "Retry-After", string_of_int retry_s ]
          (Printf.sprintf
             {|{"error":"queue full","queue_cap":%d,"retry_after_s":%d}|}
             (Scheduler.queue_cap t.sched) retry_s
          ^ "\n")
      | Scheduler.Accepted v ->
        let status =
          if v.Scheduler.v_state = Job.Done then 200 else 202
        in
        json status (view_json v)))
  | ("GET" | "HEAD"), [] ->
    json 200
      (Printf.sprintf {|[%s]|}
         (String.concat ","
            (List.map view_json (Scheduler.list t.sched))))
  | ("GET" | "HEAD"), [ id ] -> (
    match Scheduler.find t.sched id with
    | None -> error 404 (Printf.sprintf "unknown job %s" id)
    | Some v -> json 200 (view_json v))
  | ("GET" | "HEAD"), (id :: "result" :: rest as _path) -> (
    match Scheduler.find t.sched id with
    | None -> error 404 (Printf.sprintf "unknown job %s" id)
    | Some v -> (
      match v.Scheduler.v_outcome with
      | None ->
        error 409
          (Printf.sprintf "job %s is %s, not done" id
             (Job.state_to_string v.Scheduler.v_state))
      | Some o -> (
        match rest with
        | [] ->
          json 200
            (Printf.sprintf {|{"id":"%s","cache":%s,"summary":%s,"files":[%s]}|}
               id
               (match v.Scheduler.v_origin with
               | None -> "null"
               | Some og ->
                 Printf.sprintf {|"%s"|} (Job.origin_to_string og))
               (Job.summary_json o.Job.oc_summary)
               (files_json o))
        | [ file ] -> (
          match List.assoc_opt file o.Job.oc_files with
          | None -> error 404 (Printf.sprintf "no file %s in job %s" file id)
          | Some text ->
            (* Raw bytes: what `modemerge merge` would have written to
               -o DIR under the same name. *)
            Httpd.respond ~content_type:"text/plain; charset=utf-8" text)
        | _ -> Httpd.not_found)))
  | "DELETE", [ id ] -> (
    match Scheduler.cancel t.sched id with
    | Ok v -> json 200 (view_json v)
    | Error msg ->
      let status =
        if Scheduler.find t.sched id = None then 404 else 409
      in
      error status msg)
  | ("POST" | "DELETE"), _ ->
    Httpd.respond ~status:405
      ~headers:[ "Allow", "GET, HEAD, POST, DELETE" ]
      "method not allowed here\n"
  | _ -> Httpd.not_found

let queue_handler t (rq : Httpd.request) =
  match rq.Httpd.rq_method with
  | "GET" | "HEAD" ->
    let views = Scheduler.list t.sched in
    let count st =
      List.length
        (List.filter
           (fun v -> Job.state_to_string v.Scheduler.v_state = st)
           views)
    in
    json 200
      (Printf.sprintf
         {|{"queued":%d,"running":%d,"done":%d,"failed":%d,"cancelled":%d,"queue_cap":%d,"jobs":[%s]}|}
         (count "queued") (count "running") (count "done") (count "failed")
         (count "cancelled")
         (Scheduler.queue_cap t.sched)
         (String.concat ","
            (List.map
               (fun v ->
                 Printf.sprintf {|{"id":"%s","state":"%s","priority":%d}|}
                   v.Scheduler.v_id
                   (Job.state_to_string v.Scheduler.v_state)
                   v.Scheduler.v_priority)
               views)))
  | _ ->
    Httpd.respond ~status:405 ~headers:[ "Allow", "GET, HEAD" ]
      "method not allowed here\n"

let cache_handler t (rq : Httpd.request) =
  match rq.Httpd.rq_method, subpath ~prefix:"/cache" rq.Httpd.rq_path with
  | ("GET" | "HEAD"), [ "stats" ] -> json 200 (Rcache.stats_json t.rcache)
  | ("GET" | "HEAD"), _ -> Httpd.not_found
  | _ ->
    Httpd.respond ~status:405 ~headers:[ "Allow", "GET, HEAD" ]
      "method not allowed here\n"

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start config =
  let rcache =
    Rcache.create ?dir:config.dc_cache_dir ~entries:config.dc_cache_entries ()
  in
  let sched =
    Scheduler.create ?jobs:config.dc_jobs ~queue_cap:config.dc_queue_cap
      ~cache:rcache ()
  in
  let t = { server = None; sched; rcache; stopped = false } in
  Serve.register ~prefix:"/jobs" (jobs_handler t);
  Serve.register ~prefix:"/queue" (queue_handler t);
  Serve.register ~prefix:"/cache" (cache_handler t);
  (match
     Serve.start ~max_body_bytes:config.dc_max_body_bytes
       ~addr:config.dc_addr ~port:config.dc_port ()
   with
  | server -> t.server <- Some server
  | exception e ->
    Serve.unregister ~prefix:"/jobs";
    Serve.unregister ~prefix:"/queue";
    Serve.unregister ~prefix:"/cache";
    Scheduler.stop sched;
    raise e);
  t

let addr t = Serve.addr (Option.get t.server)
let port t = Serve.port (Option.get t.server)
let scheduler t = t.sched
let cache t = t.rcache

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Serve.unregister ~prefix:"/jobs";
    Serve.unregister ~prefix:"/queue";
    Serve.unregister ~prefix:"/cache";
    Scheduler.stop t.sched;
    Option.iter Serve.stop t.server
  end
