(** Merge-job specifications and lifecycle states.

    A job is one merge request: a design, an ordered list of SDC
    sources and the result-shaping options, submitted as JSON over
    [POST /jobs]. This module owns the wire format (parsing a
    submission, rendering status) and the state vocabulary; the
    {!Scheduler} owns execution. *)

type options = {
  opt_policy : Mm_core.Merge_flow.policy;
  opt_check_equivalence : bool;
  opt_tolerance : Mm_util.Toler.t option;
  opt_annotate : bool;
}

val default_options : options
(** [Strict], equivalence checking on, default tolerance, no
    provenance annotations — the CLI [merge] defaults. *)

type spec = {
  sp_design_format : string;  (** ["nl"] or ["v"] *)
  sp_design_text : string;
  sp_sources : (string * string) list;  (** (mode name, SDC text), in order *)
  sp_options : options;
  sp_priority : int;  (** higher runs first; default 0 *)
}

val fingerprint : spec -> string
(** {!Fingerprint.compute} over the spec (priority excluded). *)

val spec_of_json : string -> (spec, string) result
(** Parse a [POST /jobs] body:
    {v
    {"design": {"format": "nl", "text": "..."},
     "sources": [{"name": "func", "text": "..."}, ...],
     "options": {"policy": "strict"|"permissive",
                 "check_equivalence": bool,
                 "tolerance": {"rel": float, "abs": float},
                 "annotate": bool},
     "priority": int}
    v}
    [options] and [priority] are optional ({!default_options}, 0);
    [design.format] defaults to ["nl"]. [Error msg] on malformed
    JSON, a missing field or an unknown format/policy. *)

(** {2 Lifecycle} *)

type state =
  | Queued
  | Running
  | Done
  | Failed of string     (** crash or malformed design/constraints *)
  | Cancelled of string  (** why *)

val state_to_string : state -> string
(** ["queued" | "running" | "done" | "failed" | "cancelled"]. *)

(** How the result was obtained — the cache-provenance axis the smoke
    tests assert on. *)
type origin =
  | Computed           (** ran the merge pipeline *)
  | Cache_hit          (** served from the result cache, no pipeline *)
  | Coalesced          (** completed by an identical in-flight job *)

val origin_to_string : origin -> string
(** ["computed" | "hit" | "coalesced"]. *)

(** The cacheable outcome of a completed merge. *)
type summary = {
  sm_n_individual : int;
  sm_n_merged : int;
  sm_reduction_percent : float;
  sm_runtime_s : float;
  sm_quarantined : string list;
  sm_degraded : int;  (** cliques degraded to individuals *)
}

type outcome = {
  oc_files : (string * string) list;
      (** {!Mm_core.Merge_flow.merged_files} pairs: byte-identical to
          the one-shot CLI *)
  oc_summary : summary;
}

val outcome_of_result : annotate:bool -> Mm_core.Merge_flow.result -> outcome

val summary_json : summary -> string
(** One JSON object (no trailing newline). *)
