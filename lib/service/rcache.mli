(** Content-addressed result cache: fingerprint -> completed merge
    outcome.

    Two layers behind one mutex-protected interface (handlers call in
    from the HTTP domain, the scheduler from its dispatcher domain):

    - a bounded in-memory LRU ([entries] outcomes; least-recently-used
      evicted, [cache.evictions]);
    - an optional on-disk store ([dir]): one file per fingerprint,
      written with the {!Mm_core.Checkpoint} discipline — temp file +
      atomic [Sys.rename], an embedded payload digest verified on
      read. A torn, corrupt or schema-mismatched file is treated as
      absent (and deleted), never served.

    A disk hit is promoted into the memory LRU. Lookups and stores
    maintain the [cache.hits] / [cache.misses] / [cache.stores] /
    [cache.evictions] counters and journal [cache.*] events, which is
    what lets the smoke suite assert "second submission hit the cache
    and skipped the pipeline" from outside. *)

type t

val create : ?dir:string -> ?entries:int -> unit -> t
(** [entries] caps the memory layer (default 64, min 1). [dir] enables
    the disk layer (created if missing). *)

val find : t -> string -> Job.outcome option
(** Lookup by fingerprint. Counts a hit (attr [tier] = [memory] or
    [disk]) or a miss. *)

val store : t -> string -> Job.outcome -> unit
(** Insert, evicting the LRU entry if the memory layer is full, and
    persist to disk when enabled. Idempotent per fingerprint. *)

val stats_json : t -> string
(** The [/cache/stats] body: entry count, capacity, disk state and the
    cumulative hit/miss/store/eviction counters (one JSON object). *)
