(* Job specs: the POST /jobs wire format and the state vocabulary.
   Parsing reuses Runlog's hand-rolled JSON reader; rendering reuses
   Metrics' JSON escaping, so the service adds no JSON machinery of
   its own. *)

module Merge_flow = Mm_core.Merge_flow
module Runlog = Mm_util.Runlog

type options = {
  opt_policy : Merge_flow.policy;
  opt_check_equivalence : bool;
  opt_tolerance : Mm_util.Toler.t option;
  opt_annotate : bool;
}

let default_options =
  {
    opt_policy = Merge_flow.Strict;
    opt_check_equivalence = true;
    opt_tolerance = None;
    opt_annotate = false;
  }

type spec = {
  sp_design_format : string;
  sp_design_text : string;
  sp_sources : (string * string) list;
  sp_options : options;
  sp_priority : int;
}

let policy_to_string = function
  | Merge_flow.Strict -> "strict"
  | Merge_flow.Permissive -> "permissive"

let fingerprint spec =
  Fingerprint.compute ~design_format:spec.sp_design_format
    ~design_text:spec.sp_design_text ~sources:spec.sp_sources
    ~policy:(policy_to_string spec.sp_options.opt_policy)
    ~check_equivalence:spec.sp_options.opt_check_equivalence
    ~tolerance:
      (Option.map
         (fun t -> t.Mm_util.Toler.rel, t.Mm_util.Toler.abs)
         spec.sp_options.opt_tolerance)
    ~annotate:spec.sp_options.opt_annotate

(* ------------------------------------------------------------------ *)
(* Wire format                                                         *)

let spec_of_json body =
  let ( let* ) = Result.bind in
  let str = function Runlog.Str s -> Some s | _ -> None in
  let require name v =
    match v with Some x -> Ok x | None -> Error ("missing or invalid " ^ name)
  in
  match Runlog.parse_json body with
  | exception Runlog.Parse_error msg -> Error ("malformed JSON: " ^ msg)
  | j ->
    let* design = require {|"design"|} (Runlog.member "design" j) in
    let* design_text =
      require {|"design.text"|}
        (Option.bind (Runlog.member "text" design) str)
    in
    let* design_format =
      match Runlog.member "format" design with
      | None -> Ok "nl"
      | Some (Runlog.Str ("nl" | "v" as f)) -> Ok f
      | Some _ -> Error {|unknown "design.format" (want "nl" or "v")|}
    in
    let* sources_j =
      match Runlog.member "sources" j with
      | Some (Runlog.Arr l) when l <> [] -> Ok l
      | _ -> Error {|missing or empty "sources" array|}
    in
    let* sources =
      List.fold_left
        (fun acc s ->
          let* acc = acc in
          let* name =
            require {|"sources[].name"|} (Option.bind (Runlog.member "name" s) str)
          in
          let* text =
            require {|"sources[].text"|} (Option.bind (Runlog.member "text" s) str)
          in
          Ok ((name, text) :: acc))
        (Ok []) sources_j
    in
    let sources = List.rev sources in
    let opts = Runlog.member "options" j in
    let opt name = Option.bind opts (Runlog.member name) in
    let* policy =
      match opt "policy" with
      | None -> Ok default_options.opt_policy
      | Some (Runlog.Str "strict") -> Ok Merge_flow.Strict
      | Some (Runlog.Str "permissive") -> Ok Merge_flow.Permissive
      | Some _ -> Error {|unknown "options.policy" (want "strict" or "permissive")|}
    in
    let* check_equivalence =
      match opt "check_equivalence" with
      | None -> Ok default_options.opt_check_equivalence
      | Some (Runlog.Bool b) -> Ok b
      | Some _ -> Error {|"options.check_equivalence" must be a boolean|}
    in
    let* tolerance =
      match opt "tolerance" with
      | None -> Ok None
      | Some t -> (
        match Runlog.member "rel" t, Runlog.member "abs" t with
        | Some (Runlog.Num rel), Some (Runlog.Num abs) ->
          Ok (Some { Mm_util.Toler.rel; abs })
        | _ -> Error {|"options.tolerance" wants {"rel": float, "abs": float}|})
    in
    let* annotate =
      match opt "annotate" with
      | None -> Ok default_options.opt_annotate
      | Some (Runlog.Bool b) -> Ok b
      | Some _ -> Error {|"options.annotate" must be a boolean|}
    in
    let* priority =
      match Runlog.member "priority" j with
      | None -> Ok 0
      | Some (Runlog.Num n) when Float.is_integer n -> Ok (int_of_float n)
      | Some _ -> Error {|"priority" must be an integer|}
    in
    Ok
      {
        sp_design_format = design_format;
        sp_design_text = design_text;
        sp_sources = sources;
        sp_options =
          {
            opt_policy = policy;
            opt_check_equivalence = check_equivalence;
            opt_tolerance = tolerance;
            opt_annotate = annotate;
          };
        sp_priority = priority;
      }

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

type state =
  | Queued
  | Running
  | Done
  | Failed of string
  | Cancelled of string

let state_to_string = function
  | Queued -> "queued"
  | Running -> "running"
  | Done -> "done"
  | Failed _ -> "failed"
  | Cancelled _ -> "cancelled"

type origin = Computed | Cache_hit | Coalesced

let origin_to_string = function
  | Computed -> "computed"
  | Cache_hit -> "hit"
  | Coalesced -> "coalesced"

type summary = {
  sm_n_individual : int;
  sm_n_merged : int;
  sm_reduction_percent : float;
  sm_runtime_s : float;
  sm_quarantined : string list;
  sm_degraded : int;
}

type outcome = { oc_files : (string * string) list; oc_summary : summary }

let outcome_of_result ~annotate (r : Merge_flow.result) =
  {
    oc_files = Merge_flow.merged_files ~annotate r;
    oc_summary =
      {
        sm_n_individual = r.Merge_flow.n_individual;
        sm_n_merged = r.Merge_flow.n_merged;
        sm_reduction_percent = r.Merge_flow.reduction_percent;
        sm_runtime_s = r.Merge_flow.runtime_s;
        sm_quarantined =
          List.map
            (fun q -> q.Merge_flow.q_name)
            r.Merge_flow.quarantined;
        sm_degraded = List.length r.Merge_flow.degraded;
      };
  }

let summary_json s =
  let esc = Mm_util.Metrics.json_escape in
  Printf.sprintf
    {|{"n_individual":%d,"n_merged":%d,"reduction_percent":%s,"runtime_s":%s,"quarantined":[%s],"degraded":%d}|}
    s.sm_n_individual s.sm_n_merged
    (Mm_util.Metrics.json_float s.sm_reduction_percent)
    (Mm_util.Metrics.json_float s.sm_runtime_s)
    (String.concat ","
       (List.map (fun q -> Printf.sprintf {|"%s"|} (esc q)) s.sm_quarantined))
    s.sm_degraded
