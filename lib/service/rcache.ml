(* Result cache: bounded memory LRU over an optional on-disk store.
   All entry points lock one mutex; the work inside is O(entries) at
   worst (LRU eviction scan), tiny next to a merge. *)

module Metrics = Mm_util.Metrics
module Eventlog = Mm_util.Eventlog

let disk_schema = 1
let disk_magic = Printf.sprintf "modemerge-rcache %d" disk_schema

type slot = { mutable sl_outcome : Job.outcome; mutable sl_used : int }

type t = {
  dir : string option;
  entries : int;
  table : (string, slot) Hashtbl.t;
  mutable tick : int;  (* LRU clock: bumped on every touch *)
  mu : Mutex.t;
}

let create ?dir ?(entries = 64) () =
  Option.iter
    (fun d -> if not (Sys.file_exists d) then Sys.mkdir d 0o755)
    dir;
  {
    dir;
    entries = max 1 entries;
    table = Hashtbl.create 64;
    tick = 0;
    mu = Mutex.create ();
  }

(* ------------------------------------------------------------------ *)
(* Disk layer: "modemerge-rcache N FP MD5\n" + Marshal payload,
   written to a temp file and renamed into place. Anything that fails
   verification is deleted and reported absent.                        *)

let disk_path dir fp = Filename.concat dir (fp ^ ".result")

let disk_write dir fp (outcome : Job.outcome) =
  let payload = Marshal.to_string outcome [] in
  let header =
    Printf.sprintf "%s %s %s\n" disk_magic fp
      (Digest.to_hex (Digest.string payload))
  in
  let path = disk_path dir fp in
  let tmp = path ^ ".tmp" in
  (try
     Out_channel.with_open_bin tmp (fun oc ->
         Out_channel.output_string oc header;
         Out_channel.output_string oc payload);
     Sys.rename tmp path
   with Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ()));
  ()

let disk_read dir fp : Job.outcome option =
  let path = disk_path dir fp in
  if not (Sys.file_exists path) then None
  else
    let drop () = (try Sys.remove path with Sys_error _ -> ()); None in
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error _ -> None
    | raw -> (
      match String.index_opt raw '\n' with
      | None -> drop ()
      | Some nl -> (
        let header = String.sub raw 0 nl in
        let payload = String.sub raw (nl + 1) (String.length raw - nl - 1) in
        match String.split_on_char ' ' header with
        | [ "modemerge-rcache"; v; h_fp; h_md5 ]
          when int_of_string_opt v = Some disk_schema
               && h_fp = fp
               && h_md5 = Digest.to_hex (Digest.string payload) -> (
          match (Marshal.from_string payload 0 : Job.outcome) with
          | outcome -> Some outcome
          | exception _ -> drop ())
        | _ -> drop ()))

(* ------------------------------------------------------------------ *)
(* Memory LRU                                                          *)

let touch t slot =
  t.tick <- t.tick + 1;
  slot.sl_used <- t.tick

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun fp slot acc ->
        match acc with
        | Some (_, best) when best.sl_used <= slot.sl_used -> acc
        | _ -> Some (fp, slot))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (fp, _) ->
    Hashtbl.remove t.table fp;
    Metrics.incr "cache.evictions";
    Eventlog.log "cache.evicted" ~attrs:[ "fp", fp ]

let insert t fp outcome =
  match Hashtbl.find_opt t.table fp with
  | Some slot ->
    slot.sl_outcome <- outcome;
    touch t slot
  | None ->
    if Hashtbl.length t.table >= t.entries then evict_lru t;
    let slot = { sl_outcome = outcome; sl_used = 0 } in
    touch t slot;
    Hashtbl.add t.table fp slot

(* ------------------------------------------------------------------ *)
(* Interface                                                           *)

let find t fp =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.table fp with
      | Some slot ->
        touch t slot;
        Metrics.incr "cache.hits";
        Eventlog.log "cache.hit" ~attrs:[ "fp", fp; "tier", "memory" ];
        Some slot.sl_outcome
      | None -> (
        match Option.bind t.dir (fun dir -> disk_read dir fp) with
        | Some outcome ->
          (* Promote: the disk hit becomes the freshest memory entry. *)
          insert t fp outcome;
          Metrics.incr "cache.hits";
          Eventlog.log "cache.hit" ~attrs:[ "fp", fp; "tier", "disk" ];
          Some outcome
        | None ->
          Metrics.incr "cache.misses";
          Eventlog.log "cache.miss" ~attrs:[ "fp", fp ];
          None))

let store t fp outcome =
  Mutex.protect t.mu (fun () ->
      insert t fp outcome;
      Option.iter (fun dir -> disk_write dir fp outcome) t.dir;
      Metrics.incr "cache.stores";
      Eventlog.log "cache.stored"
        ~attrs:
          [
            "fp", fp;
            "tier", (if t.dir = None then "memory" else "memory+disk");
          ])

let stats_json t =
  Mutex.protect t.mu (fun () ->
      let disk_files =
        match t.dir with
        | None -> 0
        | Some dir -> (
          match Sys.readdir dir with
          | files ->
            Array.fold_left
              (fun n f -> if Filename.check_suffix f ".result" then n + 1 else n)
              0 files
          | exception Sys_error _ -> 0)
      in
      Printf.sprintf
        {|{"entries":%d,"capacity":%d,"disk":%s,"disk_files":%d,"hits":%d,"misses":%d,"stores":%d,"evictions":%d}|}
        (Hashtbl.length t.table) t.entries
        (match t.dir with
        | None -> "null"
        | Some d -> Printf.sprintf {|"%s"|} (Metrics.json_escape d))
        disk_files
        (Metrics.get_counter "cache.hits")
        (Metrics.get_counter "cache.misses")
        (Metrics.get_counter "cache.stores")
        (Metrics.get_counter "cache.evictions"))
