(* modemerge: automated SDC mode merging from the command line.

   Subcommands:
     merge      merge N SDC mode files against a netlist
     explain    lineage of merged constraints / pair verdicts
     sta        run wire-load-model STA (+ worst paths, DRC, corners)
     relations  print Table-1 style timing relationships
     lint       constraint-quality checks for each mode
     check      equivalence-check a merged mode against individuals
     gen        emit a synthetic design + mode suite to a directory
     perf       record/diff/check performance runs against history

   Netlists may be the text format (.nl) or structural Verilog (.v);
   a Liberty file supplies custom cells via --liberty.

   Error handling: every problem is reported to stderr as one
   [file:line:col: severity[code]: message] line. Exit codes are
   0 (clean), 1 (completed with warnings / findings), 2 (fatal) and
   3 (completed, but degraded under budget pressure — see --deadline /
   --budget / --task-timeout). --strict (default) fails fast on
   malformed input; --permissive recovers, quarantines broken modes
   and reports. *)

module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Resolve = Mm_sdc.Resolve
module Context = Mm_timing.Context
module Sta = Mm_timing.Sta
module Merge_flow = Mm_core.Merge_flow
module Diag = Mm_util.Diag
module Obs = Mm_util.Obs
module Govern = Mm_util.Govern
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Diagnostic output and exit-code convention                          *)

let exit_clean = 0
let exit_warn = 1
let exit_fatal = 2
let exit_budget = 3

(* Any Warning-or-worse diagnostic printed during the run turns a
   clean exit into exit code 1. *)
let warned = ref false

(* Governance changed the outcome (clique split, budget quarantine,
   conservative pair verdict): exit 3, which beats exit 1 — a budget
   degradation is always also warned about. *)
let budget_degraded = ref false

let print_diag d =
  if Diag.severity_rank d.Diag.severity >= Diag.severity_rank Diag.Warning then
    warned := true;
  Printf.eprintf "%s\n" (Diag.to_string d)

let print_diags = List.iter print_diag

let fatal ?loc ~code fmt =
  Printf.ksprintf
    (fun msg ->
      print_diag (Diag.make ?loc Diag.Fatal ~code msg);
      exit exit_fatal)
    fmt

let finish () =
  exit
    (if !budget_degraded then exit_budget
     else if !warned then exit_warn
     else exit_clean)

(* Catch stray IO failures from any subcommand body and route them
   through the exit-code convention instead of a backtrace. *)
let guard_io f =
  try f () with
  | Sys_error msg -> fatal ~code:"io.error" "%s" msg
  | Failure msg -> fatal ~code:"cli.failure" "%s" msg

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)

let cell_finder liberty =
  match liberty with
  | None -> Mm_netlist.Library.find
  | Some path ->
    let lib =
      try Mm_netlist.Liberty.load_file path
      with Mm_netlist.Liberty.Parse_error { line; msg } ->
        fatal ~loc:(Diag.loc ~line path) ~code:"io.liberty" "%s" msg
    in
    fun name ->
      (match
         List.find_opt
           (fun c -> c.Mm_netlist.Lib_cell.cell_name = name)
           lib.Mm_netlist.Liberty.cells
       with
      | Some c -> Some c
      | None -> Mm_netlist.Library.find name)

let read_design ?liberty path =
  try
    if Filename.check_suffix path ".v" then
      Mm_netlist.Verilog.read_file ~lib:(cell_finder liberty) path
    else Mm_netlist.Netlist_io.read_file path
  with
  | Failure msg -> fatal ~loc:(Diag.loc path) ~code:"io.netlist" "%s" msg
  | Mm_netlist.Verilog.Error { line; msg } ->
    fatal ~loc:(Diag.loc ~line path) ~code:"io.verilog" "%s" msg
  | Sys_error msg -> fatal ~code:"io.read" "%s" msg

let mode_name_of_path path = Filename.remove_extension (Filename.basename path)

let load_mode ~policy design path =
  let name = mode_name_of_path path in
  match policy with
  | Merge_flow.Permissive ->
    let r = Resolve.mode_of_file_robust design ~name path in
    print_diags r.Resolve.diags;
    r.Resolve.mode
  | Merge_flow.Strict -> (
    match Resolve.mode_of_file design ~name path with
    | r ->
      print_diags r.Resolve.diags;
      r.Resolve.mode
    | exception Mm_sdc.Parser.Error { loc; msg } ->
      fatal ?loc ~code:(Mm_sdc.Parser.error_code msg) "%s" msg
    | exception Mm_sdc.Lexer.Error { line; col; msg } ->
      fatal
        ~loc:{ Diag.file = path; line; col }
        ~code:(Mm_sdc.Parser.lex_code msg) "%s" msg
    | exception Sys_error msg -> fatal ~code:"io.read" "%s" msg)

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)

let netlist_arg =
  let doc = "Netlist file: .v structural Verilog or the .nl text format." in
  Arg.(required & opt (some file) None & info [ "n"; "netlist" ] ~doc)

let liberty_arg =
  let doc = "Liberty (.lib) file providing additional cells." in
  Arg.(value & opt (some file) None & info [ "liberty" ] ~doc)

let sdc_args =
  let doc = "SDC mode files." in
  Arg.(non_empty & pos_all file [] & info [] ~docv:"SDC" ~doc)

(* ------------------------------------------------------------------ *)
(* Observability: one flag set shared by every subcommand
   (--trace / --metrics / --profile / --profile-gc / --serve /
   --events / --progress)                                              *)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON file of the run's pipeline spans \
     (open in chrome://tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a flat metrics JSON file: pipeline counters (e.g. \
     sta.tags_propagated, merge.cliques) plus per-stage span durations."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let profile_arg =
  let doc =
    "Print a per-stage profile tree (call counts, total/self wall time) \
     to stderr after the run, followed by a pool-utilization summary."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let profile_gc_arg =
  let doc =
    "Like $(b,--profile), with GC columns per stage: allocated words \
     (millions) and minor/major collection counts. Also adds gc.* \
     counter tracks to $(b,--trace) output."
  in
  Arg.(value & flag & info [ "profile-gc" ] ~doc)

let serve_arg =
  let doc =
    "Serve live telemetry over HTTP while the command runs: GET \
     /metrics (Prometheus text format), /healthz (governance state), \
     /progress (per-stage ETA), /events (recent journal as NDJSON), \
     /trace (Chrome trace of spans so far). $(docv) is PORT or \
     ADDR:PORT; the default address is 127.0.0.1, and port 0 asks the \
     OS for a free port. The bound endpoint is reported on stderr. \
     Serving is read-only: results are byte-identical with and without \
     it."
  in
  Arg.(
    value & opt (some string) None & info [ "serve" ] ~docv:"[ADDR:]PORT" ~doc)

let events_arg =
  let doc =
    "Write the structured event journal (stage boundaries, quarantines, \
     retries, clique splits, checkpoints, chaos injections) as \
     schema-versioned NDJSON on exit — including fatal exits and \
     SIGINT/SIGTERM."
  in
  Arg.(value & opt (some string) None & info [ "events" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Render live per-stage progress (done/total with ETA) to stderr: an \
     in-place bar on a TTY, occasional plain lines on a pipe."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

type obs_opts = {
  oo_trace : string option;
  oo_metrics : string option;
  oo_profile : bool;
  oo_profile_gc : bool;
  oo_serve : string option;
  oo_events : string option;
  oo_progress : bool;
}

(* Every subcommand takes the identical observability flag set, so a
   flag learned on merge works verbatim on sta or perf. *)
let obs_term =
  let mk trace metrics profile profile_gc serve events progress =
    {
      oo_trace = trace;
      oo_metrics = metrics;
      oo_profile = profile;
      oo_profile_gc = profile_gc;
      oo_serve = serve;
      oo_events = events;
      oo_progress = progress;
    }
  in
  Term.(
    const mk $ trace_arg $ metrics_arg $ profile_arg $ profile_gc_arg
    $ serve_arg $ events_arg $ progress_arg)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc contents;
      output_char oc '\n')

(* Drop one trailing newline (write_file adds its own). *)
let chomp s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\n' then String.sub s 0 (n - 1) else s

(* Span recording is off by default (it is the only part of the
   observability layer with a per-callsite cost); any flag whose
   exporter reads the span sink turns it on — including --serve, whose
   /trace endpoint streams the spans recorded so far.

   All exports run through one idempotent flush, registered both with
   at_exit (covers clean, warn, fatal and uncaught-exception exits) and
   with SIGINT/SIGTERM handlers: the default dispositions kill the
   process without running at_exit, which used to lose every pending
   trace/metrics file on Ctrl-C. The handlers route through
   Stdlib.exit with the conventional 128+signal codes, so an
   interrupted run still leaves a valid (partial) trace and event
   dump. *)
let obs_setup o =
  if
    o.oo_trace <> None || o.oo_metrics <> None || o.oo_profile
    || o.oo_profile_gc || o.oo_serve <> None
  then Obs.set_enabled true;
  if o.oo_profile_gc then Obs.set_gc_enabled true;
  if o.oo_progress then Mm_util.Progress.set_render true;
  let server =
    Option.map
      (fun spec ->
        match Mm_util.Serve.parse_spec spec with
        | Error msg -> fatal ~code:"cli.serve" "--serve %s" msg
        | Ok (addr, port) -> (
          match Mm_util.Serve.start ~addr ~port () with
          | srv ->
            Printf.eprintf "serving telemetry on http://%s:%d/\n%!"
              (Mm_util.Serve.addr srv) (Mm_util.Serve.port srv);
            srv
          | exception Failure msg -> fatal ~code:"cli.serve" "%s" msg))
      o.oo_serve
  in
  let flushed = ref false in
  let flush_exports () =
    if not !flushed then begin
      flushed := true;
      Mm_util.Progress.render_finish ();
      Option.iter (fun p -> write_file p (Obs.trace_event_json ())) o.oo_trace;
      Option.iter (fun p -> write_file p (Obs.metrics_json ())) o.oo_metrics;
      Option.iter
        (fun p -> write_file p (chomp (Mm_util.Eventlog.to_ndjson ())))
        o.oo_events;
      if o.oo_profile || o.oo_profile_gc then begin
        prerr_string (Obs.profile_tree ~gc:o.oo_profile_gc ());
        prerr_string (Mm_util.Pool.utilization_report ())
      end;
      Option.iter Mm_util.Serve.stop server
    end
  in
  at_exit flush_exports;
  let on_signal signum =
    let name, code =
      if signum = Sys.sigterm then "SIGTERM", 143 else "SIGINT", 130
    in
    Mm_util.Eventlog.log "run.signal" ~attrs:[ "signal", name ];
    Stdlib.exit code
  in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
   with Invalid_argument _ | Sys_error _ -> ());
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
  with Invalid_argument _ | Sys_error _ -> ()

let jobs_arg =
  let doc =
    "Number of worker domains for the parallel pipeline stages (mode \
     loading, mergeability checks, per-clique merges, STA sweeps). \
     Defaults to $(b,MM_JOBS) or the hardware's recommended domain \
     count; 1 runs fully sequentially. Results are identical for any \
     value."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let policy_arg =
  let strict =
    ( Merge_flow.Strict,
      Arg.info [ "strict" ]
        ~doc:"Fail fast: any malformed constraint aborts the run (default)." )
  in
  let permissive =
    ( Merge_flow.Permissive,
      Arg.info [ "permissive" ]
        ~doc:
          "Recover and report: malformed commands are skipped with \
           diagnostics, broken modes are quarantined, and failing merge \
           groups fall back to individual modes." )
  in
  Arg.(value & vflag Merge_flow.Strict [ strict; permissive ])

(* ------------------------------------------------------------------ *)
(* Resource governance: --deadline / --budget / --task-timeout /
   --retries / --mem-limit-mb, and crash-safe --checkpoint/--resume.   *)

let deadline_arg =
  let doc =
    "Global wall-clock deadline in seconds. When it expires, in-flight \
     work is cancelled cooperatively and the run degrades (permissive) \
     or aborts (strict)."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC" ~doc)

let budget_arg =
  let doc =
    Printf.sprintf
      "Per-stage budget in seconds, repeatable: $(b,--budget \
       cliques=2.5). Stages: %s."
      (String.concat ", " Merge_flow.stage_names)
  in
  Arg.(
    value
    & opt_all (pair ~sep:'=' string float) []
    & info [ "budget" ] ~docv:"STAGE=SEC" ~doc)

let task_timeout_arg =
  let doc =
    "Per-task timeout in seconds (one mode load, probe, pair check or \
     clique merge). A timed-out task is retried with backoff, then \
     walks the degradation ladder (split, quarantine)."
  in
  Arg.(
    value & opt (some float) None & info [ "task-timeout" ] ~docv:"SEC" ~doc)

let retries_arg =
  let doc =
    "Total attempts per governed task, including the first (default 3)."
  in
  Arg.(value & opt (some int) None & info [ "retries" ] ~docv:"N" ~doc)

let mem_limit_arg =
  let doc =
    "Process heap watermark in MiB; exceeding it cancels in-flight work \
     cooperatively instead of risking an OOM kill."
  in
  Arg.(value & opt (some float) None & info [ "mem-limit-mb" ] ~docv:"MB" ~doc)

let checkpoint_arg =
  let doc =
    "Persist each completed pipeline stage to this directory; a killed \
     run restarted with $(b,--resume) continues from the last completed \
     stage with byte-identical output."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let resume_arg =
  let doc =
    "Reuse completed stages from the $(b,--checkpoint) directory when \
     its fingerprint matches the current inputs and options."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let budgets_of ~deadline ~stage_budgets ~task_timeout ~retries ~mem_limit =
  List.iter
    (fun (stage, _) ->
      if not (List.mem stage Merge_flow.stage_names) then
        fatal ~code:"cli.budget" "unknown --budget stage %S (stages: %s)" stage
          (String.concat ", " Merge_flow.stage_names))
    stage_budgets;
  {
    Merge_flow.bg_deadline_s = deadline;
    bg_stage_s = stage_budgets;
    bg_task_s = task_timeout;
    bg_retry =
      (match retries with
      | None -> Govern.default_retry
      | Some n -> { Govern.default_retry with Govern.max_attempts = max 1 n });
    bg_mem_limit_mb = mem_limit;
  }

let checkpoint_spec_of ~checkpoint ~resume ~netlist =
  match checkpoint with
  | None ->
    if resume then
      fatal ~code:"cli.resume" "--resume requires --checkpoint DIR";
    None
  | Some dir ->
    Some
      { Merge_flow.ck_dir = dir; ck_resume = resume; ck_key = netlist }

(* Shared by merge and explain: run the flow with parser/lexer errors
   routed through the exit-code convention. *)
let run_flow ?check_equivalence ~policy ?jobs ?budgets ?checkpoint ~design sdcs
    =
  match
    Merge_flow.run_files ?check_equivalence ~policy ?jobs ?budgets ?checkpoint
      ~design sdcs
  with
  | r ->
    if Merge_flow.degraded_under_budget r.Merge_flow.governed then begin
      budget_degraded := true;
      let g = r.Merge_flow.governed in
      print_diag
        (Diag.makef Diag.Warning ~code:"govern.degraded"
           "completed degraded under budget pressure: %d clique split(s), %d \
            budget quarantine(s), %d conservative pair verdict(s)"
           g.Merge_flow.gov_clique_splits g.Merge_flow.gov_budget_quarantines
           g.Merge_flow.gov_conservative_pairs)
    end;
    r
  | exception Mm_sdc.Parser.Error { loc; msg } ->
    fatal ?loc ~code:(Mm_sdc.Parser.error_code msg) "%s" msg
  | exception Mm_sdc.Lexer.Error { line; col; msg } ->
    fatal
      ~loc:{ Diag.file = "<sdc>"; line; col }
      ~code:(Mm_sdc.Parser.lex_code msg) "%s" msg
  | exception Govern.Cancelled reason ->
    fatal ~code:(Govern.reason_code reason) "%s"
      (Govern.reason_to_string reason)

let merge_cmd =
  let outdir =
    let doc = "Directory for the merged SDC files (created if missing)." in
    Arg.(value & opt string "merged_out" & info [ "o"; "out" ] ~doc)
  in
  let diag_json =
    let doc = "Additionally dump all diagnostics as a JSON array to stderr." in
    Arg.(value & flag & info [ "diag-json" ] ~doc)
  in
  let audit_arg =
    let doc =
      "Write a machine-readable audit report: schema-versioned JSON with \
       the mergeability verdict matrix, per-constraint lineage tables and \
       the comparison coverage counters. Byte-identical for any --jobs \
       value."
    in
    Arg.(value & opt (some string) None & info [ "audit" ] ~docv:"FILE" ~doc)
  in
  let annotate_arg =
    let doc =
      "Embed provenance comments in the emitted SDC: a '# prov: <id> \
       <rule> [modes]' line above every constraint."
    in
    Arg.(value & flag & info [ "annotate" ] ~doc)
  in
  let dot_arg =
    let doc =
      "Also write a Graphviz merged_N.dot per merged mode: the timing \
       graph's clock network with merged-vs-individual edge attribution \
       (red = propagation present only in the merged mode)."
    in
    Arg.(value & flag & info [ "dot" ] ~doc)
  in
  let run netlist liberty sdcs outdir policy jobs diag_json audit annotate dot
      obs deadline stage_budgets task_timeout retries mem_limit checkpoint
      resume =
    guard_io @@ fun () ->
    obs_setup obs;
    let budgets =
      budgets_of ~deadline ~stage_budgets ~task_timeout ~retries ~mem_limit
    in
    let checkpoint = checkpoint_spec_of ~checkpoint ~resume ~netlist in
    let design = read_design ?liberty netlist in
    let result = run_flow ~policy ?jobs ~budgets ?checkpoint ~design sdcs in
    print_diags result.Merge_flow.diags;
    List.iter
      (fun (q : Merge_flow.quarantined) ->
        print_diags q.Merge_flow.q_diags;
        print_diag
          (Diag.makef Diag.Warning ~code:"merge.quarantined"
             "mode %s quarantined at %s stage; merged without it"
             q.Merge_flow.q_name
             (Merge_flow.stage_to_string q.Merge_flow.q_stage)))
      result.Merge_flow.quarantined;
    if diag_json then
      Printf.eprintf "%s\n"
        (Diag.render_json
           (result.Merge_flow.diags
           @ List.concat_map
               (fun (q : Merge_flow.quarantined) -> q.Merge_flow.q_diags)
               result.Merge_flow.quarantined));
    print_string (Mm_core.Report.mergeability_text result.Merge_flow.mergeability);
    Printf.printf "Merged %d modes into %d (%.1f%% reduction) in %.2fs\n"
      result.Merge_flow.n_individual result.Merge_flow.n_merged
      result.Merge_flow.reduction_percent result.Merge_flow.runtime_s;
    (* The audit reads only deterministic merge data, so it is written
       before the STA pass touches the process. *)
    Option.iter
      (fun path ->
        Mm_core.Audit.write path result;
        Printf.printf "audit report -> %s\n" path)
      audit;
    if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
    if dot then begin
      (* Rebuild the individual sides to attribute clock-network edges;
         quarantined modes simply contribute no side. *)
      let by_name = Hashtbl.create 8 in
      List.iter
        (fun path ->
          match load_mode ~policy design path with
          | m -> Hashtbl.replace by_name m.Mode.mode_name m
          | exception _ -> ())
        sdcs;
      List.iteri
        (fun i (g : Merge_flow.group) ->
          let sides =
            List.filter_map
              (fun name ->
                match Hashtbl.find_opt by_name name with
                | None -> None
                | Some m ->
                  Some
                    {
                      Mm_timing.Dot.side_name = name;
                      side_ctx = Context.create design m;
                      side_rename =
                        Mm_core.Prelim.rename_of g.Merge_flow.grp_prelim name;
                    })
              g.Merge_flow.grp_members
          in
          let ctx = Context.create design g.Merge_flow.grp_mode in
          let path = Filename.concat outdir (Printf.sprintf "merged_%d.dot" i) in
          Mm_timing.Dot.write path ~individual:sides ~clock_network_only:true
            ctx;
          Printf.printf "clock-network graph -> %s\n" path)
        result.Merge_flow.groups
    end;
    (* Post-merge STA sanity pass: one analysis per merged mode (a
       parallel sweep), so the run reports QoR (tag count, worst slack)
       next to the equivalence verdict. *)
    let reports =
      Mm_util.Pool.with_pool ?jobs @@ fun pool ->
      Sta.analyze_many ~pool design
        (List.map
           (fun (g : Merge_flow.group) -> g.Merge_flow.grp_mode)
           result.Merge_flow.groups)
    in
    (* The (filename, bytes) pairs come from Merge_flow.merged_files —
       the same helper the service daemon serves results from, so CLI
       and daemon output are byte-identical by construction. *)
    let files = Merge_flow.merged_files ~annotate result in
    List.iteri
      (fun i ((g : Merge_flow.group), rep) ->
        let name, text = List.nth files i in
        let path = Filename.concat outdir name in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc text);
        let slack_txt =
          match Sta.worst_setup_by_endpoint rep with
          | [] -> ""
          | l ->
            Printf.sprintf ", worst slack %.3f"
              (List.fold_left (fun a (_, s) -> Float.min a s) Float.infinity l)
        in
        Printf.printf "  group [%s] -> %s%s (STA: %d tags%s)\n"
          (String.concat ", " g.Merge_flow.grp_members)
          path
          (match g.Merge_flow.grp_equiv with
          | Some e when e.Mm_core.Equiv.equivalent -> " (validated equivalent)"
          | Some e ->
            Printf.sprintf " (NOT equivalent: %d mismatches)"
              e.Mm_core.Equiv.mismatches
          | None -> "")
          rep.Sta.rep_n_tags slack_txt)
      (List.combine result.Merge_flow.groups reports);
    if
      List.exists
        (fun (g : Merge_flow.group) ->
          match g.Merge_flow.grp_equiv with
          | Some e -> not e.Mm_core.Equiv.equivalent
          | None -> false)
        result.Merge_flow.groups
    then begin
      print_diag
        (Diag.make Diag.Fatal ~code:"merge.not-equivalent"
           "a merged mode failed the equivalence check");
      exit exit_fatal
    end;
    finish ()
  in
  let info =
    Cmd.info "merge" ~doc:"Merge SDC timing modes into superset modes."
  in
  Cmd.v info
    Term.(
      const run $ netlist_arg $ liberty_arg $ sdc_args $ outdir $ policy_arg
      $ jobs_arg $ diag_json $ audit_arg $ annotate_arg $ dot_arg $ obs_term
      $ deadline_arg $ budget_arg $ task_timeout_arg $ retries_arg
      $ mem_limit_arg $ checkpoint_arg $ resume_arg)

let explain_cmd =
  let line_arg =
    let doc =
      "Explain one merged-SDC constraint: the exact command text as it \
       appears in the emitted merged SDC (leading/trailing whitespace \
       ignored)."
    in
    Arg.(value & opt (some string) None & info [ "line" ] ~docv:"SDC" ~doc)
  in
  let id_arg =
    let doc = "Explain a constraint by provenance id, e.g. merged_0#c12." in
    Arg.(value & opt (some string) None & info [ "id" ] ~docv:"ID" ~doc)
  in
  let pair_arg =
    let doc =
      "Explain a mode pair's mergeability verdict, e.g. --pair cs1,cs2."
    in
    Arg.(
      value
      & opt (some (pair ~sep:',' string string)) None
      & info [ "pair" ] ~docv:"A,B" ~doc)
  in
  let run netlist liberty sdcs policy jobs line id pr obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let design = read_design ?liberty netlist in
    (* The merge is re-run to rebuild lineage; ids are stable across
       runs and --jobs values, so an id taken from an audit file or an
       annotated SDC resolves here. Equivalence checking is skipped —
       explain only needs the lineage. *)
    let result = run_flow ~check_equivalence:false ~policy ?jobs ~design sdcs in
    let explain_entries found =
      List.iter
        (fun (scope, e) ->
          Printf.printf "[%s]\n%s\n" scope (Mm_util.Prov.explain_entry e))
        found
    in
    let explained = ref false in
    Option.iter
      (fun line ->
        explained := true;
        let found =
          List.concat_map
            (fun (g : Merge_flow.group) ->
              List.map
                (fun e -> Mm_util.Prov.scope g.Merge_flow.grp_prov, e)
                (Mm_util.Prov.find_line g.Merge_flow.grp_prov line))
            result.Merge_flow.groups
        in
        if found = [] then begin
          warned := true;
          Printf.printf "no merged constraint matches: %s\n" (String.trim line)
        end
        else explain_entries found)
      line;
    Option.iter
      (fun id ->
        explained := true;
        let found =
          List.filter_map
            (fun (g : Merge_flow.group) ->
              Option.map
                (fun e -> Mm_util.Prov.scope g.Merge_flow.grp_prov, e)
                (Mm_util.Prov.find_id g.Merge_flow.grp_prov id))
            result.Merge_flow.groups
        in
        if found = [] then begin
          warned := true;
          Printf.printf "no constraint with id %s\n" id
        end
        else explain_entries found)
      id;
    Option.iter
      (fun (a, b) ->
        explained := true;
        let m = result.Merge_flow.mergeability in
        let names = m.Mm_core.Mergeability.mode_names in
        let index_of n = Array.to_list names |> List.find_index (( = ) n) in
        match index_of a, index_of b with
        | Some i, Some j when i <> j ->
          let i, j = if i < j then i, j else j, i in
          if m.Mm_core.Mergeability.adjacency.(i).(j) then
            Printf.printf "%s and %s are mergeable\n" names.(i) names.(j)
          else begin
            let reasons =
              Option.value ~default:[]
                (Hashtbl.find_opt m.Mm_core.Mergeability.pair_reasons (i, j))
            in
            Printf.printf "%s and %s are NOT mergeable\n" names.(i) names.(j);
            (match reasons with
            | first :: _ ->
              Printf.printf "  first blocking reason: %s\n" first
            | [] -> ());
            List.iter (Printf.printf "  - %s\n") reasons
          end
        | _ ->
          warned := true;
          Printf.printf "unknown mode pair %s,%s (known: %s)\n" a b
            (String.concat ", " (Array.to_list names)))
      pr;
    if not !explained then
      (* No query: dump the full lineage of every merged mode. *)
      List.iter
        (fun (g : Merge_flow.group) ->
          List.iter
            (fun e -> Printf.printf "%s\n" (Mm_util.Prov.explain_entry e))
            (Mm_util.Prov.entries g.Merge_flow.grp_prov))
        result.Merge_flow.groups;
    finish ()
  in
  let info =
    Cmd.info "explain"
      ~doc:
        "Explain the lineage of merged constraints: which rule produced a \
         constraint from which source modes, or why a mode pair did not \
         merge."
  in
  Cmd.v info
    Term.(
      const run $ netlist_arg $ liberty_arg $ sdc_args $ policy_arg $ jobs_arg
      $ line_arg $ id_arg $ pair_arg $ obs_term)

let sta_cmd =
  let paths_arg =
    Arg.(value & opt int 0 & info [ "paths" ] ~doc:"Print the N worst paths.")
  in
  let corner_conv =
    Arg.enum
      [ "typical", Mm_timing.Corner.typical; "slow", Mm_timing.Corner.slow;
        "fast", Mm_timing.Corner.fast ]
  in
  let corner_arg =
    Arg.(
      value
      & opt corner_conv Mm_timing.Corner.typical
      & info [ "corner" ] ~doc:"PVT corner: typical, slow or fast.")
  in
  let run netlist liberty sdcs paths corner policy jobs obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let design = read_design ?liberty netlist in
    let modes = List.map (load_mode ~policy design) sdcs in
    let reports =
      Mm_util.Pool.with_pool ?jobs @@ fun pool ->
      Sta.analyze_many ~corner ~pool design modes
    in
    List.iter2
      (fun mode report ->
        Printf.printf "mode %s @ %s: %d endpoints, %d tags, %.3fs\n"
          report.Sta.rep_mode corner.Mm_timing.Corner.corner_name
          (List.length report.Sta.rep_slacks)
          report.Sta.rep_n_tags report.Sta.rep_runtime;
        List.iter
          (fun (v : Sta.drc_violation) ->
            Printf.printf "  DRC %s on %s: %.4f > limit %.4f\n"
              (match v.Sta.drv_kind with
              | Mm_sdc.Ast.Max_transition -> "max_transition"
              | Mm_sdc.Ast.Max_capacitance -> "max_capacitance")
              (Design.pin_name design v.Sta.drv_pin)
              v.Sta.drv_actual v.Sta.drv_limit)
          report.Sta.rep_drc;
        let worst = Sta.worst_setup_by_endpoint report in
        let sorted =
          List.sort (fun (_, a) (_, b) -> Float.compare a b) worst
        in
        List.iteri
          (fun i (pin, slack) ->
            if i < 10 then
              Printf.printf "  %-30s %+8.3f\n" (Design.pin_name design pin) slack)
          sorted;
        if paths > 0 then
          List.iter
            (fun p -> print_string (Sta.path_to_string design p))
            (Sta.worst_paths ~corner ~n:paths design mode))
      modes reports;
    finish ()
  in
  let info =
    Cmd.info "sta"
      ~doc:"Run wire-load-model STA on each mode (slacks, DRC, worst paths)."
  in
  Cmd.v info
    Term.(
      const run $ netlist_arg $ liberty_arg $ sdc_args $ paths_arg $ corner_arg
      $ policy_arg $ jobs_arg $ obs_term)

let lint_cmd =
  let run netlist liberty sdcs policy obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let design = read_design ?liberty netlist in
    let dirty = ref false in
    List.iter
      (fun path ->
        let mode = load_mode ~policy design path in
        let ctx = Context.create design mode in
        let findings = Mm_core.Lint.run ctx in
        Printf.printf "mode %s: %d finding(s)\n" mode.Mode.mode_name
          (List.length findings);
        if findings <> [] then begin
          dirty := true;
          print_endline (Mm_core.Lint.to_string findings)
        end)
      sdcs;
    if !dirty then exit exit_warn;
    finish ()
  in
  let info =
    Cmd.info "lint" ~doc:"Constraint-quality checks for each mode."
  in
  Cmd.v info
    Term.(
      const run $ netlist_arg $ liberty_arg $ sdc_args $ policy_arg $ obs_term)

let relations_cmd =
  let run netlist liberty sdcs policy obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let design = read_design ?liberty netlist in
    List.iter
      (fun path ->
        let mode = load_mode ~policy design path in
        let ctx = Context.create design mode in
        let rels = Mm_core.Relation_prop.endpoint_relations ctx in
        Mm_util.Tab.print
          ~title:(Printf.sprintf "Timing relationships of %s" mode.Mode.mode_name)
          (Mm_core.Report.relations_table design rels))
      sdcs;
    finish ()
  in
  let info =
    Cmd.info "relations"
      ~doc:"Print per-endpoint timing relationships (paper Table 1 style)."
  in
  Cmd.v info
    Term.(
      const run $ netlist_arg $ liberty_arg $ sdc_args $ policy_arg $ obs_term)

let check_cmd =
  let merged_arg =
    let doc = "The merged-mode SDC to validate." in
    Arg.(required & opt (some file) None & info [ "m"; "merged" ] ~doc)
  in
  let run netlist liberty merged sdcs policy obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let design = read_design ?liberty netlist in
    let merged_mode = load_mode ~policy design merged in
    let individuals = List.map (load_mode ~policy design) sdcs in
    let report =
      Mm_core.Equiv.check ~individual:individuals
        ~rename:(fun _mode clock -> clock)
        ~merged:merged_mode ()
    in
    Printf.printf "equivalent: %b (%d mismatches, %d unsound, %d pessimistic)\n"
      report.Mm_core.Equiv.equivalent report.Mm_core.Equiv.mismatches
      (List.length report.Mm_core.Equiv.unsound)
      (List.length report.Mm_core.Equiv.pessimistic);
    List.iter (Printf.printf "  %s\n") report.Mm_core.Equiv.unsound;
    List.iter (Printf.printf "  %s\n") report.Mm_core.Equiv.pessimistic;
    if not report.Mm_core.Equiv.equivalent then begin
      print_diag
        (Diag.make Diag.Fatal ~code:"merge.not-equivalent"
           "merged mode is not equivalent to the individual modes");
      exit exit_fatal
    end;
    finish ()
  in
  let info =
    Cmd.info "check"
      ~doc:
        "Equivalence-check a merged mode against individual modes (clock \
         names must already coincide)."
  in
  Cmd.v info
    Term.(
      const run $ netlist_arg $ liberty_arg $ merged_arg $ sdc_args $ policy_arg
      $ obs_term)

let gen_cmd =
  let outdir =
    let doc = "Output directory." in
    Arg.(value & opt string "gen_out" & info [ "o"; "out" ] ~doc)
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.")
  in
  let domains =
    Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Clock domains.")
  in
  let regs =
    Arg.(value & opt int 64 & info [ "regs" ] ~doc:"Registers per domain.")
  in
  let families =
    Arg.(
      value
      & opt (list int) [ 3; 2 ]
      & info [ "families" ] ~doc:"Modes per mergeable family, e.g. 3,2.")
  in
  let run outdir seed domains regs families obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let params =
      {
        Mm_workload.Gen_design.default_params with
        Mm_workload.Gen_design.seed;
        n_domains = domains;
        regs_per_domain = regs;
      }
    in
    let design, info = Mm_workload.Gen_design.generate params in
    if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
    let npath = Filename.concat outdir "design.nl" in
    Mm_netlist.Netlist_io.write_file npath design;
    Mm_netlist.Verilog.write_file (Filename.concat outdir "design.v") design;
    let oc = open_out (Filename.concat outdir "cells.lib") in
    output_string oc (Mm_netlist.Liberty.builtin_liberty ());
    close_out oc;
    Printf.printf "wrote %s (+ design.v, cells.lib) (%s)\n" npath
      (Mm_netlist.Stats.to_string (Mm_netlist.Stats.of_design design));
    let suite =
      {
        Mm_workload.Gen_modes.sp_seed = seed + 1;
        families;
        base_period = 2.0;
        scan_family = true;
      }
    in
    List.iteri
      (fun family n ->
        for index = 0 to n - 1 do
          let sdc =
            Mm_workload.Gen_modes.sdc_of_mode_spec info suite ~family ~index
          in
          let path =
            Filename.concat outdir (Printf.sprintf "m%d_%d.sdc" family index)
          in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out_noerr oc)
            (fun () -> output_string oc sdc);
          Printf.printf "wrote %s\n" path
        done)
      families;
    finish ()
  in
  let info =
    Cmd.info "gen" ~doc:"Generate a synthetic design and mode suite."
  in
  Cmd.v info
    Term.(const run $ outdir $ seed $ domains $ regs $ families $ obs_term)

(* ------------------------------------------------------------------ *)
(* perf: the performance flight recorder's CLI (DESIGN.md §13).
   record / diff / check all execute the same built-in synthetic
   workload (generated design + two mode families, merge + STA sweep)
   so runs are comparable without any input files, then read or write
   the JSONL history under .modemerge/history/. *)

module Runlog = Mm_util.Runlog

let perf_workload ~jobs ~repeat =
  let params =
    {
      Mm_workload.Gen_design.default_params with
      Mm_workload.Gen_design.seed = 7;
      n_domains = 2;
      regs_per_domain = 48;
    }
  in
  let design, info = Mm_workload.Gen_design.generate params in
  let suite =
    {
      Mm_workload.Gen_modes.sp_seed = 8;
      families = [ 3; 2 ];
      base_period = 2.0;
      scan_family = true;
    }
  in
  let modes = Mm_workload.Gen_modes.generate design info suite in
  for _ = 1 to repeat do
    let result = Merge_flow.run ~jobs modes in
    Mm_util.Pool.with_pool ~jobs @@ fun pool ->
    ignore
      (Sta.analyze_many ~pool design
         (List.map
            (fun (g : Merge_flow.group) -> g.Merge_flow.grp_mode)
            result.Merge_flow.groups))
  done

let perf_capture ~jobs ~repeat ~label =
  Obs.set_enabled true;
  Obs.set_gc_enabled true;
  (match perf_workload ~jobs ~repeat with
  | () -> ()
  | exception Govern.Cancelled reason ->
    fatal ~code:(Govern.reason_code reason) "%s"
      (Govern.reason_to_string reason));
  Runlog.capture ~label ~jobs ()

let perf_jobs_arg =
  let doc =
    "Worker domains for the perf workload (default 1 — sequential runs \
     are the most stable baseline)."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let perf_repeat_arg =
  let doc = "Workload iterations per run (more = steadier span times)." in
  Arg.(value & opt int 2 & info [ "repeat" ] ~docv:"N" ~doc)

let perf_label_arg =
  let doc = "History stream label (one JSONL file per label)." in
  Arg.(value & opt string "perf" & info [ "label" ] ~docv:"NAME" ~doc)

let perf_dir_arg =
  let doc = "History directory." in
  Arg.(
    value & opt string Runlog.default_dir & info [ "history-dir" ] ~docv:"DIR" ~doc)

let perf_record_cmd =
  let run jobs repeat label dir obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let r = perf_capture ~jobs ~repeat ~label in
    let path = Runlog.append ~dir r in
    Printf.printf "recorded run (rev %s, jobs=%d, %d spans) -> %s\n"
      r.Runlog.r_git_rev r.Runlog.r_jobs
      (List.length r.Runlog.r_spans)
      path;
    finish ()
  in
  let info =
    Cmd.info "record"
      ~doc:"Run the synthetic perf workload and append it to the history."
  in
  Cmd.v info
    Term.(const run $ perf_jobs_arg $ perf_repeat_arg $ perf_label_arg
          $ perf_dir_arg $ obs_term)

let perf_diff_cmd =
  let run label dir obs =
    guard_io @@ fun () ->
    obs_setup obs;
    match Runlog.last 2 (Runlog.load ~dir ~label ()) with
    | [ older; newer ] ->
      print_string (Runlog.diff_report older newer);
      finish ()
    | _ ->
      fatal ~code:"perf.history"
        "need at least two recorded runs in %s (label %s) to diff" dir label
  in
  let info = Cmd.info "diff" ~doc:"Compare the last two recorded runs." in
  Cmd.v info Term.(const run $ perf_label_arg $ perf_dir_arg $ obs_term)

let perf_check_cmd =
  let threshold_arg =
    let doc = "Relative self-time regression threshold in percent." in
    Arg.(value & opt float 10. & info [ "threshold" ] ~docv:"PCT" ~doc)
  in
  let min_self_arg =
    let doc =
      "Absolute floor in seconds: spans under it on both sides are never \
       judged, and any flagged delta must exceed it."
    in
    Arg.(value & opt float 0.01 & info [ "min-self" ] ~docv:"SEC" ~doc)
  in
  let window_arg =
    let doc = "Baseline window: how many trailing history runs to compare \
               against." in
    Arg.(value & opt int 10 & info [ "window" ] ~docv:"N" ~doc)
  in
  let record_arg =
    let doc = "Append the current run to the history after a passing check." in
    Arg.(value & flag & info [ "record" ] ~doc)
  in
  let run jobs repeat label dir threshold min_self window record obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let config =
      {
        Runlog.default_config with
        Runlog.threshold_pct = threshold;
        min_self_s = min_self;
        window;
      }
    in
    (* Span self-times at different job counts are not comparable
       (concurrent children sum wall time across domains), so the
       baseline window is restricted to runs recorded at the same
       concurrency. *)
    let history =
      List.filter
        (fun r -> r.Runlog.r_jobs = jobs)
        (Runlog.load ~dir ~label ())
    in
    let baselines = Runlog.last window history in
    if baselines = [] then
      fatal ~code:"perf.history"
        "no baseline history at jobs=%d in %s (label %s); run 'modemerge \
         perf record --jobs %d' first"
        jobs dir label jobs;
    let current = perf_capture ~jobs ~repeat ~label in
    let verdicts = Runlog.check ~config ~baselines current in
    print_string (Runlog.check_report verdicts);
    if Runlog.has_regression verdicts then begin
      print_diag
        (Diag.makef Diag.Warning ~code:"perf.regression"
           "performance regression against the last %d run(s)"
           (List.length baselines))
    end
    else if record then begin
      let path = Runlog.append ~dir current in
      Printf.printf "check passed; recorded -> %s\n" path
    end;
    finish ()
  in
  let info =
    Cmd.info "check"
      ~doc:
        "Run the perf workload and gate on self-time regressions against \
         recent history (nonzero exit on regression)."
  in
  Cmd.v info
    Term.(
      const run $ perf_jobs_arg $ perf_repeat_arg $ perf_label_arg
      $ perf_dir_arg $ threshold_arg $ min_self_arg $ window_arg $ record_arg
      $ obs_term)

let perf_cmd =
  let info =
    Cmd.info "perf"
      ~doc:
        "Performance flight recorder: record runs to \
         .modemerge/history/, diff them, and gate on statistical \
         regressions."
  in
  Cmd.group info [ perf_record_cmd; perf_diff_cmd; perf_check_cmd ]

(* ------------------------------------------------------------------ *)
(* Merge service: daemon + submit/status/fetch clients                 *)

module Daemon = Mm_service.Daemon
module Runlog_json = Mm_util.Runlog

let jstr s = Printf.sprintf {|"%s"|} (Mm_util.Metrics.json_escape s)

(* Raw write: fetched result files must land byte-identical, so no
   write_file newline courtesy here. *)
let write_raw path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let server_arg =
  let doc =
    "The merge daemon to talk to, as ADDR:PORT or a bare PORT on \
     127.0.0.1."
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "s"; "server" ] ~docv:"[ADDR:]PORT" ~doc)

let parse_server spec =
  match Mm_util.Serve.parse_spec spec with
  | Ok (addr, port) -> addr, port
  | Error msg -> fatal ~code:"cli.server" "--server %s" msg

let http ?meth ?body ~addr ~port path =
  match Mm_util.Httpd.request ?meth ?body ~addr ~port path with
  | r -> r
  | exception Unix.Unix_error (e, _, _) ->
    fatal ~code:"service.connect" "cannot reach %s:%d (%s)" addr port
      (Unix.error_message e)
  | exception Failure msg -> fatal ~code:"service.connect" "%s" msg

let json_member name j = Runlog_json.member name j

let json_str name j =
  match json_member name j with
  | Some (Runlog_json.Str s) -> Some s
  | _ -> None

let parse_body ~code body =
  match Runlog_json.parse_json body with
  | j -> j
  | exception Runlog_json.Parse_error msg ->
    fatal ~code "malformed response: %s" msg

let daemon_cmd =
  let spec_arg =
    let doc =
      "Listen address: PORT or ADDR:PORT; port 0 asks the OS for a \
       free port (reported on stderr and on /healthz)."
    in
    Arg.(value & pos 0 string "127.0.0.1:0" & info [] ~docv:"[ADDR:]PORT" ~doc)
  in
  let queue_cap_arg =
    let doc =
      "Admission control: maximum number of jobs waiting in the queue; \
       further submissions get 429 + Retry-After."
    in
    Arg.(value & opt int 16 & info [ "queue-cap" ] ~docv:"N" ~doc)
  in
  let cache_entries_arg =
    let doc = "In-memory result-cache capacity (LRU-evicted)." in
    Arg.(value & opt int 64 & info [ "cache-entries" ] ~docv:"N" ~doc)
  in
  let cache_dir_arg =
    let doc =
      "Persist merge results to this directory (content-addressed, \
       atomic writes); cached results survive daemon restarts."
    in
    Arg.(value & opt (some string) None & info [ "cache-dir" ] ~docv:"DIR" ~doc)
  in
  let max_body_arg =
    let doc = "Maximum POST /jobs body size in MiB (over-limit is 413)." in
    Arg.(value & opt int 8 & info [ "max-body-mb" ] ~docv:"MB" ~doc)
  in
  let run spec jobs queue_cap cache_entries cache_dir max_body_mb obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let addr, port =
      match Mm_util.Serve.parse_spec spec with
      | Ok ap -> ap
      | Error msg -> fatal ~code:"cli.serve" "daemon %s" msg
    in
    let d =
      match
        Daemon.start
          {
            Daemon.dc_addr = addr;
            dc_port = port;
            dc_jobs = jobs;
            dc_queue_cap = queue_cap;
            dc_cache_entries = cache_entries;
            dc_cache_dir = cache_dir;
            dc_max_body_bytes = max_body_mb * 1024 * 1024;
          }
      with
      | d -> d
      | exception Failure msg -> fatal ~code:"cli.serve" "%s" msg
    in
    (* Subprocess tests parse this line, same convention as --serve. *)
    Printf.eprintf "daemon listening on http://%s:%d/\n%!" (Daemon.addr d)
      (Daemon.port d);
    (* Serve until SIGINT/SIGTERM; the obs_setup handlers flush exports
       and exit 130/143. *)
    let rec forever () =
      Unix.sleep 3600;
      forever ()
    in
    forever ()
  in
  let info =
    Cmd.info "daemon"
      ~doc:
        "Run modemerge as a long-lived merge server: POST /jobs with SDC \
         sources, priority scheduling with backpressure, and a \
         content-addressed result cache, on the same port as the live \
         telemetry endpoints."
  in
  Cmd.v info
    Term.(
      const run $ spec_arg $ jobs_arg $ queue_cap_arg $ cache_entries_arg
      $ cache_dir_arg $ max_body_arg $ obs_term)

(* Poll a job until it leaves queued/running; returns the final status
   JSON. *)
let wait_for_job ~addr ~port id =
  let rec poll () =
    let status, _, body = http ~addr ~port (Printf.sprintf "/jobs/%s" id) in
    if status <> 200 then
      fatal ~code:"service.status" "job %s lookup failed (%d): %s" id status
        (String.trim body);
    let j = parse_body ~code:"service.status" body in
    match json_str "state" j with
    | Some ("queued" | "running") ->
      Unix.sleepf 0.05;
      poll ()
    | _ -> j
  in
  poll ()

let fetch_result ~addr ~port ~outdir id =
  let status, _, body =
    http ~addr ~port (Printf.sprintf "/jobs/%s/result" id)
  in
  if status <> 200 then
    fatal ~code:"service.fetch" "no result for job %s (%d): %s" id status
      (String.trim body);
  let manifest = parse_body ~code:"service.fetch" body in
  let files =
    match json_member "files" manifest with
    | Some (Runlog_json.Arr files) ->
      List.filter_map (fun f -> json_str "name" f) files
    | _ -> fatal ~code:"service.fetch" "result manifest for %s has no files" id
  in
  if not (Sys.file_exists outdir) then Sys.mkdir outdir 0o755;
  List.iter
    (fun name ->
      let status, _, bytes =
        http ~addr ~port (Printf.sprintf "/jobs/%s/result/%s" id name)
      in
      if status <> 200 then
        fatal ~code:"service.fetch" "fetching %s of job %s failed (%d)" name id
          status;
      let path = Filename.concat outdir name in
      write_raw path bytes;
      Printf.printf "  %s -> %s\n" name path)
    files;
  manifest

let submit_cmd =
  let priority_arg =
    let doc = "Scheduling priority: higher runs first (default 0)." in
    Arg.(value & opt int 0 & info [ "priority" ] ~docv:"N" ~doc)
  in
  let annotate_arg =
    let doc = "Ask for provenance-annotated merged SDC." in
    Arg.(value & flag & info [ "annotate" ] ~doc)
  in
  let wait_arg =
    let doc =
      "Block until the job completes; with $(b,-o) also fetch the \
       merged files."
    in
    Arg.(value & flag & info [ "wait" ] ~doc)
  in
  let outdir_arg =
    let doc = "Directory for fetched merged files (implies --wait)." in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"DIR" ~doc)
  in
  let run server netlist sdcs policy priority annotate wait outdir obs =
    guard_io @@ fun () ->
    obs_setup obs;
    let addr, port = parse_server server in
    let design_format =
      if Filename.check_suffix netlist ".v" then "v" else "nl"
    in
    let read path = In_channel.with_open_bin path In_channel.input_all in
    let body =
      Printf.sprintf
        {|{"design":{"format":%s,"text":%s},"sources":[%s],"options":{"policy":%s,"check_equivalence":true,"annotate":%b},"priority":%d}|}
        (jstr design_format)
        (jstr (read netlist))
        (String.concat ","
           (List.map
              (fun path ->
                Printf.sprintf {|{"name":%s,"text":%s}|}
                  (jstr (mode_name_of_path path))
                  (jstr (read path)))
              sdcs))
        (jstr
           (match policy with
           | Merge_flow.Strict -> "strict"
           | Merge_flow.Permissive -> "permissive"))
        annotate priority
    in
    let status, headers, rbody = http ~meth:"POST" ~body ~addr ~port "/jobs" in
    (match status with
    | 200 | 202 -> ()
    | 429 ->
      fatal ~code:"service.busy" "queue full; retry after %ss"
        (Option.value ~default:"1"
           (Mm_util.Httpd.header "retry-after" headers))
    | _ ->
      fatal ~code:"service.submit" "submission failed (%d): %s" status
        (String.trim rbody));
    let j = parse_body ~code:"service.submit" rbody in
    let id =
      match json_str "id" j with
      | Some id -> id
      | None -> fatal ~code:"service.submit" "response carries no job id"
    in
    Printf.printf "job %s %s%s\n" id
      (Option.value ~default:"?" (json_str "state" j))
      (match json_str "cache" j with
      | Some "hit" -> " (cache hit)"
      | _ -> "");
    let wait = wait || outdir <> None in
    if wait then begin
      let final = wait_for_job ~addr ~port id in
      match json_str "state" final with
      | Some "done" ->
        (match json_member "summary" final with
        | Some s ->
          Printf.printf "job %s done: %s modes -> %s\n" id
            (match json_member "n_individual" s with
            | Some (Runlog_json.Num n) -> string_of_int (int_of_float n)
            | _ -> "?")
            (match json_member "n_merged" s with
            | Some (Runlog_json.Num n) -> string_of_int (int_of_float n)
            | _ -> "?")
        | None -> Printf.printf "job %s done\n" id);
        Option.iter
          (fun outdir -> ignore (fetch_result ~addr ~port ~outdir id))
          outdir
      | Some state ->
        fatal ~code:"service.job" "job %s %s: %s" id state
          (Option.value ~default:"(no error detail)" (json_str "error" final))
      | None -> fatal ~code:"service.job" "job %s: malformed status" id
    end;
    finish ()
  in
  let info =
    Cmd.info "submit"
      ~doc:
        "Submit a merge job to a running $(b,modemerge daemon): netlist + \
         SDC mode files, JSON over HTTP. Identical submissions are served \
         from the daemon's result cache."
  in
  Cmd.v info
    Term.(
      const run $ server_arg $ netlist_arg $ sdc_args $ policy_arg
      $ priority_arg $ annotate_arg $ wait_arg $ outdir_arg $ obs_term)

let status_cmd =
  let id_arg =
    let doc = "Job id (e.g. j3); omitted, shows the whole queue." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"JOB" ~doc)
  in
  let run server id =
    guard_io @@ fun () ->
    let addr, port = parse_server server in
    let path =
      match id with None -> "/queue" | Some id -> Printf.sprintf "/jobs/%s" id
    in
    let status, _, body = http ~addr ~port path in
    if status <> 200 then
      fatal ~code:"service.status" "%s failed (%d): %s" path status
        (String.trim body);
    print_string body;
    finish ()
  in
  let info =
    Cmd.info "status"
      ~doc:"Show a daemon job's status JSON, or the queue without an id."
  in
  Cmd.v info Term.(const run $ server_arg $ id_arg)

let fetch_cmd =
  let id_arg =
    let doc = "Job id to fetch the merged SDC files of." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"JOB" ~doc)
  in
  let outdir_arg =
    let doc = "Directory for the fetched files (created if missing)." in
    Arg.(value & opt string "merged_out" & info [ "o"; "out" ] ~doc)
  in
  let run server id outdir =
    guard_io @@ fun () ->
    let addr, port = parse_server server in
    ignore (fetch_result ~addr ~port ~outdir id);
    finish ()
  in
  let info =
    Cmd.info "fetch"
      ~doc:
        "Download a completed daemon job's merged SDC files — \
         byte-identical to what the one-shot $(b,merge) writes."
  in
  Cmd.v info Term.(const run $ server_arg $ id_arg $ outdir_arg)

let () =
  (* Raw backtraces must be recorded for the pool's crash outcomes to
     carry real failure sites; chaos faults come from MM_CHAOS. *)
  Printexc.record_backtrace true;
  Mm_util.Chaos.configure_env ();
  let info =
    Cmd.info "modemerge" ~version:"1.0.0"
      ~doc:"Timing-graph based SDC mode merging (DAC'15 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            merge_cmd; explain_cmd; sta_cmd; relations_cmd; lint_cmd;
            check_cmd; gen_cmd; perf_cmd; daemon_cmd; submit_cmd; status_cmd;
            fetch_cmd;
          ]))
