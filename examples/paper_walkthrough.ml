(* Walkthrough of the paper's Constraint Sets 2-6 on the Figure-1
   circuit: clock union, clock-attribute merging, clock refinement,
   exception uniquification, data refinement, and the 3-pass
   comparison with Tables 2-4.

   dune exec examples/paper_walkthrough.exe *)

module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Context = Mm_timing.Context
module Pc = Mm_workload.Paper_circuit
module Prelim = Mm_core.Prelim
module Refine = Mm_core.Refine
module Compare = Mm_core.Compare
module Report = Mm_core.Report

let section title = Printf.printf "\n==== %s ====\n" title

let show_sdc label mode =
  Printf.printf "%s:\n%s\n" label (Mode.to_sdc mode)

let () =
  let d = Pc.build () in

  section "Constraint Set 2: union of clocks, merged clock attributes";
  let a, b = Pc.constraint_set2 d in
  let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
  List.iter
    (fun (c : Mode.clock) ->
      Printf.printf "  merged clock %-8s period %-4g (from %s)\n"
        c.Mode.clk_name c.Mode.period
        (String.concat ","
           (List.map (Design.pin_name d) c.Mode.sources)))
    prelim.Prelim.merged.Mode.clocks;
  List.iter
    (fun (name, (attr : Mode.clock_attr)) ->
      Option.iter
        (Printf.printf "  %s source latency min = %g (min of 1.0 and 0.98)\n" name)
        attr.Mode.src_latency_min)
    prelim.Prelim.merged.Mode.attrs;

  section "Constraint Set 3: clock refinement after conflicting case analysis";
  let a, b = Pc.constraint_set3 d in
  let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
  Printf.printf "  dropped case statements: %d\n"
    (List.length prelim.Prelim.dropped_cases);
  Printf.printf "  inferred set_disable_timing: %s\n"
    (String.concat ", "
       (List.map (Design.pin_name d) prelim.Prelim.inferred_disables));
  List.iter
    (fun (c, p) ->
      Printf.printf
        "  inferred set_clock_sense -stop_propagation -clock %s at %s\n" c
        (Design.pin_name d p))
    prelim.Prelim.inferred_senses;
  show_sdc "  merged mode A+B" prelim.Prelim.merged;

  section "Constraint Set 4: exception uniquification";
  let a, b = Pc.constraint_set4 d in
  let prelim = Prelim.merge ~name:"A'+B" [ a; b ] in
  List.iter
    (fun (mn, e) ->
      Printf.printf "  exception of mode %s uniquified to: %s\n" mn
        (Mm_sdc.Writer.write_command (Mode.commands_of_exc d e)))
    prelim.Prelim.uniquified;

  section "Constraint Set 5: data refinement (stop clock in data network)";
  let a, b = Pc.constraint_set5 d in
  let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
  let refine = Refine.run ~prelim ~individual:[ a; b ] () in
  List.iter
    (fun (c, p) ->
      Printf.printf "  added: set_false_path -from [get_clocks %s] -through %s\n"
        c (Design.pin_name d p))
    refine.Refine.data_clock_fixes;
  show_sdc "  final merged mode A+B" refine.Refine.refined;

  section "Constraint Set 6: the 3-pass comparison (Tables 2-4)";
  let a, b = Pc.constraint_set6 d in
  let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
  Printf.printf
    "  false paths common to both modes: %d; dropped for refinement: %d\n"
    (List.length prelim.Prelim.merged.Mode.exceptions)
    (List.length prelim.Prelim.dropped_exceptions);
  let sides =
    List.map
      (fun (m : Mode.t) ->
        {
          Compare.ctx = Context.create d m;
          rename = Prelim.rename_of prelim m.Mode.mode_name;
        })
      [ a; b ]
  in
  let merged_ctx = Context.create d prelim.Prelim.merged in
  let cmp = Compare.run ~individual:sides ~merged:merged_ctx () in
  Mm_util.Tab.print ~title:"Table 2: pass-1 comparison"
    (Report.pass1_table d cmp.Compare.pass1);
  Mm_util.Tab.print ~title:"Table 3: pass-2 comparison"
    (Report.pass2_table d cmp.Compare.pass2);
  Mm_util.Tab.print ~title:"Table 4: pass-3 comparison"
    (Report.pass3_table d cmp.Compare.pass3);
  Printf.printf "Constraints added to the merged mode:\n%s\n"
    (Report.fixes_text d cmp.Compare.fixes);
  let refine = Refine.run ~prelim ~individual:[ a; b ] () in
  let equiv =
    Mm_core.Equiv.check ~individual:[ a; b ]
      ~rename:(Prelim.rename_of prelim)
      ~merged:refine.Refine.refined ()
  in
  Printf.printf "Validation: merged mode equivalent to individuals: %b\n"
    equiv.Mm_core.Equiv.equivalent
