(* ECO-loop cost model: the paper notes that "the mode merging runtime
   adds as a one-time overhead, but the significant reduction in STA
   runtime overweighs this as it is often required to perform STA
   multiple times in a design cycle, for example in an ECO flow."

   This example quantifies that: one merge, then N ECO iterations of
   full STA over modes x corners, individual vs merged.

   dune exec examples/eco_flow.exe *)

module Sta = Mm_timing.Sta
module Corner = Mm_timing.Corner
module Merge_flow = Mm_core.Merge_flow

let () =
  let design, _info, modes =
    Mm_workload.Presets.build
      {
        Mm_workload.Presets.design_b with
        Mm_workload.Presets.pr_name = "eco_demo";
      }
  in
  let corners = Corner.standard_set in
  Printf.printf "Design: %s; %d modes x %d corners = %d sign-off scenarios\n"
    (Mm_netlist.Design.design_name design)
    (List.length modes) (List.length corners)
    (List.length modes * List.length corners);

  let t0 = Mm_util.Obs.Clock.now_ns () in
  let flow = Merge_flow.run modes in
  let merge_cost = Mm_util.Obs.Clock.elapsed_s t0 in
  let merged = Merge_flow.merged_modes flow in
  Printf.printf "One-time merge: %d -> %d modes in %.2fs\n" (List.length modes)
    (List.length merged) merge_cost;

  let sta_sweep mode_set =
    let t0 = Mm_util.Obs.Clock.now_ns () in
    let reports = Sta.analyze_scenarios design ~modes:mode_set ~corners in
    Mm_util.Obs.Clock.elapsed_s t0, reports
  in
  let t_ind, _ = sta_sweep modes in
  let t_mrg, merged_reports = sta_sweep merged in
  Printf.printf "Per-iteration STA sweep: individual %.3fs, merged %.3fs\n"
    t_ind t_mrg;

  (* Worst slack per scenario, for flavour. *)
  List.iteri
    (fun i (mode, corner, rep) ->
      if i < 6 then begin
        let worst =
          List.fold_left
            (fun acc (_, s) -> Float.min acc s)
            infinity
            (Sta.worst_setup_by_endpoint rep)
        in
        Printf.printf "  scenario %-10s @ %-8s worst slack %+.3f, %d DRC violations\n"
          mode corner worst
          (List.length rep.Sta.rep_drc)
      end)
    merged_reports;

  let t = Mm_util.Tab.create
      ~aligns:[ Mm_util.Tab.Right; Mm_util.Tab.Right; Mm_util.Tab.Right; Mm_util.Tab.Right ]
      [ "ECO iterations"; "Individual total (s)"; "Merged total (s)"; "Saving" ]
  in
  List.iter
    (fun n ->
      let fn = float_of_int n in
      let ind = fn *. t_ind in
      let mrg = merge_cost +. (fn *. t_mrg) in
      Mm_util.Tab.add_row t
        [
          string_of_int n;
          Printf.sprintf "%.2f" ind;
          Printf.sprintf "%.2f" mrg;
          (if mrg < ind then Printf.sprintf "%.0f%%" (100. *. (ind -. mrg) /. ind)
           else "-");
        ])
    [ 1; 2; 5; 10; 20; 50 ];
  Mm_util.Tab.print
    ~title:"Cumulative cost: merge once, amortise over the ECO loop" t
