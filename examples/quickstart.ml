(* Quickstart: build the paper's Figure-1 circuit, apply Constraint
   Set 1, reproduce Table 1's timing relationships, and run STA.

   dune exec examples/quickstart.exe *)

module Design = Mm_netlist.Design
module Library = Mm_netlist.Library
module Resolve = Mm_sdc.Resolve
module Context = Mm_timing.Context
module Sta = Mm_timing.Sta

let () =
  (* 1. Build a netlist with the builder API (or load one with
        Mm_netlist.Netlist_io). Here we reuse the paper's circuit. *)
  let design = Mm_workload.Paper_circuit.build () in
  Printf.printf "Design: %s\n"
    (Mm_netlist.Stats.to_string (Mm_netlist.Stats.of_design design));

  (* 2. Parse and resolve SDC constraints into a timing mode. *)
  let result =
    Resolve.mode_of_string design ~name:"demo"
      {|
create_clock -name clkA -period 10 [get_ports clk1]
set_multicycle_path 2 -through [get_pins inv1/Z]
set_false_path -through [get_pins and1/Z]
|}
  in
  List.iter (Printf.printf "warning: %s\n") (Resolve.warnings result);
  let mode = result.Resolve.mode in

  (* 3. Compute timing relationships (paper, Table 1). *)
  let ctx = Context.create design mode in
  let rels = Mm_core.Relation_prop.endpoint_relations ctx in
  Mm_util.Tab.print
    ~title:"Table 1: timing relationships under Constraint Set 1"
    (Mm_core.Report.relations_table design rels);

  (* 4. Run STA and print endpoint slacks. *)
  let report = Sta.analyze ~ctx design mode in
  Printf.printf "\nSTA (%d tags, %d checks, %.3fs):\n" report.Sta.rep_n_tags
    report.Sta.rep_n_checked report.Sta.rep_runtime;
  List.iter
    (fun (es : Sta.endpoint_slack) ->
      match es.Sta.es_setup with
      | Some s ->
        Printf.printf "  %-8s setup slack %+.3f ns\n"
          (Design.pin_name design es.Sta.es_pin)
          s
      | None -> ())
    report.Sta.rep_slacks
