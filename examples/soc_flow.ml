(* End-to-end flow on a synthetic SoC: generate a multi-domain design
   and a suite of timing modes, run mergeability analysis + merging,
   validate equivalence, and compare STA cost and QoR between the
   individual and merged modes (the paper's Tables 5/6 in miniature).

   dune exec examples/soc_flow.exe *)

module Design = Mm_netlist.Design
module Sta = Mm_timing.Sta
module Merge_flow = Mm_core.Merge_flow
module Gen_design = Mm_workload.Gen_design
module Gen_modes = Mm_workload.Gen_modes

let () =
  (* A mid-size SoC: 3 domains, scan, clock muxes. *)
  let params =
    {
      Gen_design.default_params with
      Gen_design.seed = 11;
      n_domains = 3;
      regs_per_domain = 120;
      stages = 4;
      combo_depth = 3;
      n_config_pins = 5;
      n_clock_muxes = 2;
    }
  in
  let design, info = Gen_design.generate params in
  Printf.printf "Generated design: %s\n"
    (Mm_netlist.Stats.to_string (Mm_netlist.Stats.of_design design));

  (* Three functional families and one scan family. *)
  let suite =
    {
      Gen_modes.sp_seed = 23;
      families = [ 4; 3; 3; 2 ];
      base_period = 1.6;
      scan_family = true;
    }
  in
  let modes = Gen_modes.generate design info suite in
  Printf.printf "Generated %d modes in %d families\n" (List.length modes)
    (List.length suite.Gen_modes.families);

  let result = Merge_flow.run modes in
  print_string (Mm_core.Report.mergeability_text result.Merge_flow.mergeability);
  Printf.printf "Merged %d modes into %d (%.1f%% reduction) in %.2fs\n"
    result.Merge_flow.n_individual result.Merge_flow.n_merged
    result.Merge_flow.reduction_percent result.Merge_flow.runtime_s;
  List.iter
    (fun (g : Merge_flow.group) ->
      Printf.printf "  group [%s]: %s\n"
        (String.concat ", " g.Merge_flow.grp_members)
        (match g.Merge_flow.grp_equiv with
        | Some e when e.Mm_core.Equiv.equivalent -> "validated equivalent"
        | Some e ->
          Printf.sprintf "NOT equivalent (%d mismatches, %d unsound)"
            e.Mm_core.Equiv.mismatches
            (List.length e.Mm_core.Equiv.unsound)
        | None -> "singleton, used as-is"))
    result.Merge_flow.groups;

  (* STA cost and QoR comparison. *)
  let time f =
    let t0 = Mm_util.Obs.Clock.now_ns () in
    let r = f () in
    r, Mm_util.Obs.Clock.elapsed_s t0
  in
  let ind_reports, t_ind =
    time (fun () -> List.map (fun m -> Sta.analyze design m) modes)
  in
  let mrg_reports, t_mrg =
    time (fun () ->
        List.map (fun m -> Sta.analyze design m) (Merge_flow.merged_modes result))
  in
  let conformity =
    Sta.conformity ~individual:ind_reports ~merged:mrg_reports
      ~tolerance_frac:0.01
  in
  Printf.printf
    "\nSTA over individual modes: %.3fs; over merged modes: %.3fs (%.1f%% less)\n"
    t_ind t_mrg
    (Mm_util.Stat.reduction_percent t_ind t_mrg);
  Printf.printf
    "QoR conformity: %.2f%% of endpoints within 1%% of capture period\n"
    conformity
