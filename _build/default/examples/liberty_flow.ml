(* External-file workflow: a custom Liberty cell library and a
   structural Verilog netlist, two SDC modes, merge, and write the
   merged SDC — the shape of a real adoption of this tool.

   dune exec examples/liberty_flow.exe *)

module Design = Mm_netlist.Design
module Liberty = Mm_netlist.Liberty
module Verilog = Mm_netlist.Verilog
module Lib_cell = Mm_netlist.Lib_cell
module Mode = Mm_sdc.Mode
module Resolve = Mm_sdc.Resolve

let liberty_src =
  {|
library (demo_45nm) {
  time_unit : "1ns";
  cell (NAND2X1) {
    pin (A) { direction : input; capacitance : 0.0021; }
    pin (B) { direction : input; capacitance : 0.0021; }
    pin (Y) {
      direction : output;
      function : "!(A * B)";
      timing () { intrinsic_rise : 0.045; rise_resistance : 1.1; }
    }
  }
  cell (DFFQX1) {
    ff (IQ, IQN) { clocked_on : "CK"; next_state : "D"; }
    pin (D)  { direction : input; capacitance : 0.0018; }
    pin (CK) { direction : input; clock : true; capacitance : 0.0025; }
    pin (Q)  { direction : output; function : "IQ"; }
  }
}
|}

let verilog_src =
  {|
// two-stage toggle path with a config gate
module demo (ck, cfg, din, dout);
  input ck, cfg, din;
  output dout;
  wire q1, g1;
  DFFQX1 r1 (.D(din), .CK(ck), .Q(q1));
  NAND2X1 u1 (.A(q1), .B(cfg), .Y(g1));
  DFFQX1 r2 (.D(g1), .CK(ck), .Q(dout));
endmodule
|}

let () =
  (* 1. Load the cell library and the netlist against it. *)
  let lib = Liberty.load liberty_src in
  Printf.printf "Loaded library %s with %d cells\n" lib.Liberty.lib_name
    (List.length lib.Liberty.cells);
  let find name =
    match
      List.find_opt (fun c -> c.Lib_cell.cell_name = name) lib.Liberty.cells
    with
    | Some _ as c -> c
    | None -> Mm_netlist.Library.find name
  in
  let design = Verilog.read ~lib:find verilog_src in
  Printf.printf "Elaborated %s: %s\n"
    (Design.design_name design)
    (Mm_netlist.Stats.to_string (Mm_netlist.Stats.of_design design));

  (* 2. Two modes: mission (gate enabled) and test (gate forced off,
        relaxed path). *)
  let mode name src = (Resolve.mode_of_string design ~name src).Resolve.mode in
  let mission =
    mode "mission"
      {|
create_clock -name core -period 1.2 [get_ports ck]
set_case_analysis 1 [get_ports cfg]
set_input_delay 0.3 -clock core [get_ports din]
|}
  and test =
    mode "test"
      {|
create_clock -name core -period 1.2 [get_ports ck]
set_case_analysis 0 [get_ports cfg]
set_input_delay 0.3 -clock core [get_ports din]
set_multicycle_path 2 -to [get_pins r2/D]
|}
  in

  (* 3. Merge and validate. *)
  let prelim = Mm_core.Prelim.merge ~name:"mission+test" [ mission; test ] in
  let refined = Mm_core.Refine.run ~prelim ~individual:[ mission; test ] () in
  let equiv =
    Mm_core.Equiv.check ~individual:[ mission; test ]
      ~rename:(Mm_core.Prelim.rename_of prelim)
      ~merged:refined.Mm_core.Refine.refined ()
  in
  Printf.printf "Merged 2 modes into 1; equivalent=%b (%d pessimistic notes)\n"
    equiv.Mm_core.Equiv.equivalent
    (List.length equiv.Mm_core.Equiv.pessimistic);

  (* 4. Ship the merged SDC. *)
  print_newline ();
  print_string (Mode.to_sdc refined.Mm_core.Refine.refined);

  (* 5. And confirm STA agrees endpoint by endpoint. *)
  let worst m =
    List.sort compare (Mm_timing.Sta.worst_setup_by_endpoint (Mm_timing.Sta.analyze design m))
  in
  let merged_worst = worst refined.Mm_core.Refine.refined in
  Printf.printf "\nMerged-mode endpoint slacks:\n";
  List.iter
    (fun (pin, s) ->
      Printf.printf "  %-8s %+.3f\n" (Design.pin_name design pin) s)
    merged_worst
