examples/soc_flow.mli:
