examples/scan_merge.ml: Array Hashtbl List Mm_core Mm_sdc Mm_workload Printf String
