examples/quickstart.ml: List Mm_core Mm_netlist Mm_sdc Mm_timing Mm_util Mm_workload Printf
