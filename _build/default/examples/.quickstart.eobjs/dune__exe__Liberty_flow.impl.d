examples/liberty_flow.ml: List Mm_core Mm_netlist Mm_sdc Mm_timing Printf
