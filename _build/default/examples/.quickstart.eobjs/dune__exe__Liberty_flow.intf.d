examples/liberty_flow.mli:
