examples/eco_flow.ml: Float List Mm_core Mm_netlist Mm_timing Mm_util Mm_workload Printf Unix
