examples/scan_merge.mli:
