examples/eco_flow.mli:
