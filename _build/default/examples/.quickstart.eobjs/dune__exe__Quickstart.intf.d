examples/quickstart.mli:
