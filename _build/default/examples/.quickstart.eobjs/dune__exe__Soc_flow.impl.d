examples/soc_flow.ml: List Mm_core Mm_netlist Mm_timing Mm_util Mm_workload Printf String Unix
