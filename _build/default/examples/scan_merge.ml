(* Scan/functional mode merging: shows which modes can merge and why
   the scan-shift family stays separate, then prints the merged SDC of
   the functional superset mode.

   dune exec examples/scan_merge.exe *)

module Mode = Mm_sdc.Mode
module Mergeability = Mm_core.Mergeability
module Gen_design = Mm_workload.Gen_design
module Gen_modes = Mm_workload.Gen_modes

let () =
  let params =
    {
      Gen_design.default_params with
      Gen_design.seed = 5;
      n_domains = 2;
      regs_per_domain = 40;
      stages = 3;
      combo_depth = 2;
      n_clock_muxes = 1;
    }
  in
  let design, info = Gen_design.generate params in
  let suite =
    {
      Gen_modes.sp_seed = 6;
      families = [ 3; 2 ];
      base_period = 2.0;
      scan_family = true;
    }
  in
  let modes = Gen_modes.generate design info suite in
  Printf.printf "Modes and their constraints:\n";
  List.iteri
    (fun i (m : Mode.t) ->
      Printf.printf "  %-6s %d clocks, %d cases, %d exceptions\n"
        m.Mode.mode_name
        (List.length m.Mode.clocks)
        (List.length m.Mode.cases)
        (List.length m.Mode.exceptions);
      ignore i)
    modes;

  let merg = Mergeability.analyze modes in
  print_string (Mm_core.Report.mergeability_text merg);

  (* Explain a non-mergeable pair. *)
  Hashtbl.iter
    (fun (i, j) reasons ->
      Printf.printf "\n%s and %s cannot merge because:\n"
        merg.Mergeability.mode_names.(i)
        merg.Mergeability.mode_names.(j);
      List.iter (Printf.printf "  - %s\n") (List.filteri (fun k _ -> k < 2) reasons))
    merg.Mergeability.pair_reasons;

  (* Merge the functional family and print its SDC. *)
  let cliques = Mergeability.clique_modes merg modes in
  match
    List.find_opt (fun clique -> List.length clique > 1) cliques
  with
  | None -> print_endline "no mergeable group found"
  | Some group ->
    let prelim = Mm_core.Prelim.merge ~name:"func_super" group in
    let refine = Mm_core.Refine.run ~prelim ~individual:group () in
    Printf.printf "\nMerged SDC for [%s]:\n%s\n"
      (String.concat ", " (List.map (fun (m : Mode.t) -> m.Mode.mode_name) group))
      (Mode.to_sdc refine.Mm_core.Refine.refined)
