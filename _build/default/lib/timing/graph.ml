module Design = Mm_netlist.Design
module Lib_cell = Mm_netlist.Lib_cell
module Wire_load = Mm_netlist.Wire_load
module Mode = Mm_sdc.Mode

type arc_kind = Comb | Net | Launch

type unate = Positive | Negative | Non_unate

type arc = {
  a_src : Design.pin_id;
  a_dst : Design.pin_id;
  a_kind : arc_kind;
  a_inst : int;
  a_unate : unate;
  a_dmin : float;
  a_dmax : float;
}

(* Unateness of [f] in input [i], decided by exhaustive evaluation over
   the (small) support of the cell function. *)
let unateness f i =
  let support = Mm_netlist.Logic.support f in
  if not (List.mem i support) then Non_unate
  else begin
    let others = List.filter (fun j -> j <> i) support in
    let n = List.length others in
    let can_pos = ref true and can_neg = ref true in
    for mask = 0 to (1 lsl n) - 1 do
      let env_with vi j =
        if j = i then vi
        else
          match List.find_index (( = ) j) others with
          | Some k ->
            if mask land (1 lsl k) <> 0 then Mm_netlist.Logic.T
            else Mm_netlist.Logic.F
          | None -> Mm_netlist.Logic.X
      in
      let f0 = Mm_netlist.Logic.eval (env_with Mm_netlist.Logic.F) f
      and f1 = Mm_netlist.Logic.eval (env_with Mm_netlist.Logic.T) f in
      (match f0, f1 with
      | Mm_netlist.Logic.T, Mm_netlist.Logic.F -> can_pos := false
      | Mm_netlist.Logic.F, Mm_netlist.Logic.T -> can_neg := false
      | _ -> ())
    done;
    match !can_pos, !can_neg with
    | true, false -> Positive
    | false, true -> Negative
    | true, true | false, false -> Non_unate
  end

type endpoint =
  | Ep_reg of {
      ep_data : Design.pin_id;
      ep_clock : Design.pin_id;
      ep_inst : Design.inst_id;
      ep_setup : float;
      ep_hold : float;
      ep_edge : Lib_cell.edge;
    }
  | Ep_port of { ep_pin : Design.pin_id }

type startpoint =
  | Sp_reg of {
      sp_clock : Design.pin_id;
      sp_inst : Design.inst_id;
      sp_outputs : Design.pin_id list;
      sp_clk_to_q : float;
      sp_edge : Lib_cell.edge;
    }
  | Sp_port of { sp_pin : Design.pin_id }

type t = {
  design : Design.t;
  arcs : arc array;
  out_arcs : int list array;
  in_arcs : int list array;
  topo : int array;
  topo_pos : int array;
  endpoints : endpoint list;
  startpoints : startpoint list;
  broken_arcs : int list;
  loads : float array;
}

let min_derate = 0.8
let default_port_drive = 0.5 (* ns/pF when no set_drive given *)
let transition_delay_factor = 0.3

(* Environment constraint lookup tables built from the mode. *)
type env_tables = {
  extra_load : (Design.pin_id, float) Hashtbl.t;
  port_drive : (Design.pin_id, float) Hashtbl.t;
  port_transition : (Design.pin_id, float) Hashtbl.t;
}

let env_tables (mode : Mode.t) =
  let extra_load = Hashtbl.create 16
  and port_drive = Hashtbl.create 16
  and port_transition = Hashtbl.create 16 in
  List.iter
    (fun (e : Mode.env_constraint) ->
      let table =
        match e.envc_kind with
        | Mm_sdc.Ast.Load -> extra_load
        | Mm_sdc.Ast.Drive -> port_drive
        | Mm_sdc.Ast.Input_transition -> port_transition
      in
      (* For max-delay purposes the max value dominates; store the
         worst (largest). *)
      let prev = Option.value ~default:0. (Hashtbl.find_opt table e.envc_pin) in
      Hashtbl.replace table e.envc_pin (Float.max prev e.envc_value))
    mode.Mode.envs;
  { extra_load; port_drive; port_transition }

(* Total capacitive load seen by a driver pin: connected sink pin caps
   plus estimated wire cap plus any set_load on the net's pins. *)
let load_of_driver design env wlm pin =
  match Design.pin_net design pin with
  | None -> 0.
  | Some net ->
    let sinks = Design.net_sinks design net in
    let pin_caps =
      List.fold_left (fun acc s -> acc +. Design.pin_cap design s) 0. sinks
    in
    let extra =
      List.fold_left
        (fun acc s ->
          acc +. Option.value ~default:0. (Hashtbl.find_opt env.extra_load s))
        0. sinks
      +. Option.value ~default:0. (Hashtbl.find_opt env.extra_load pin)
    in
    pin_caps +. extra +. Wire_load.wire_cap wlm (List.length sinks)

let build design (mode : Mode.t) =
  let env = env_tables mode in
  let wlm = Wire_load.default in
  let n = Design.n_pins design in
  let arcs = ref [] and n_arcs = ref 0 in
  let out_arcs = Array.make n [] and in_arcs = Array.make n [] in
  let add_arc a =
    let id = !n_arcs in
    incr n_arcs;
    arcs := a :: !arcs;
    out_arcs.(a.a_src) <- id :: out_arcs.(a.a_src);
    in_arcs.(a.a_dst) <- id :: in_arcs.(a.a_dst)
  in
  let endpoints = ref [] and startpoints = ref [] in
  (* Cell arcs. *)
  Design.iter_insts design (fun inst ->
      let cell = Design.inst_cell design inst in
      (* Combinational function arcs (also covers ICG-style cells). *)
      List.iter
        (fun (i, o) ->
          let src = Design.inst_pin design inst i
          and dst = Design.inst_pin design inst o in
          let load = load_of_driver design env wlm dst in
          let dmax = cell.Lib_cell.intrinsic +. (cell.Lib_cell.drive_res *. load) in
          let a_unate =
            match Lib_cell.function_of_output cell o with
            | Some f -> unateness f i
            | None -> Non_unate
          in
          add_arc
            {
              a_src = src;
              a_dst = dst;
              a_kind = Comb;
              a_inst = inst;
              a_unate;
              a_dmin = dmax *. min_derate;
              a_dmax = dmax;
            })
        (Lib_cell.comb_arcs cell);
      match cell.Lib_cell.seq with
      | None -> ()
      | Some seq ->
        let cp = Design.inst_pin design inst seq.Lib_cell.clock_pin in
        let outputs =
          List.map (fun q -> Design.inst_pin design inst q) seq.Lib_cell.q_pins
        in
        List.iter
          (fun q ->
            let load = load_of_driver design env wlm q in
            let dmax =
              seq.Lib_cell.clk_to_q +. (cell.Lib_cell.drive_res *. load)
            in
            add_arc
              {
                a_src = cp;
                a_dst = q;
                a_kind = Launch;
                a_inst = inst;
                (* Launched data can rise or fall regardless of the
                   clock edge. *)
                a_unate = Non_unate;
                a_dmin = dmax *. min_derate;
                a_dmax = dmax;
              })
          outputs;
        startpoints :=
          Sp_reg
            {
              sp_clock = cp;
              sp_inst = inst;
              sp_outputs = outputs;
              sp_clk_to_q = seq.Lib_cell.clk_to_q;
              sp_edge = seq.Lib_cell.clock_edge;
            }
          :: !startpoints;
        List.iter
          (fun d ->
            endpoints :=
              Ep_reg
                {
                  ep_data = Design.inst_pin design inst d;
                  ep_clock = cp;
                  ep_inst = inst;
                  ep_setup = seq.Lib_cell.setup;
                  ep_hold = seq.Lib_cell.hold;
                  ep_edge = seq.Lib_cell.clock_edge;
                }
              :: !endpoints)
          seq.Lib_cell.data_pins);
  (* Net arcs. *)
  Design.iter_nets design (fun net ->
      match Design.net_driver design net with
      | None -> ()
      | Some drv ->
        let sinks = Design.net_sinks design net in
        let fanout = List.length sinks in
        let pin_caps =
          List.fold_left (fun acc s -> acc +. Design.pin_cap design s) 0. sinks
        in
        let base = Wire_load.net_delay wlm ~fanout ~pin_caps in
        (* A port driving the net contributes its external drive and
           transition there, since it has no cell arc of its own. *)
        let port_extra =
          match Design.pin_owner design drv with
          | Design.Port_pin _ ->
            let drive =
              Option.value ~default:default_port_drive
                (Hashtbl.find_opt env.port_drive drv)
            in
            let transition =
              Option.value ~default:0. (Hashtbl.find_opt env.port_transition drv)
            in
            (drive *. (pin_caps +. Wire_load.wire_cap wlm fanout))
            +. (transition *. transition_delay_factor)
          | Design.Inst_pin _ -> 0.
        in
        let dmax = base +. port_extra in
        List.iter
          (fun s ->
            add_arc
              {
                a_src = drv;
                a_dst = s;
                a_kind = Net;
                a_inst = -1;
                a_unate = Positive;
                a_dmin = dmax *. min_derate;
                a_dmax = dmax;
              })
          sinks);
  (* Port start/endpoints. *)
  Design.iter_ports design (fun p ->
      match Design.port_dir design p with
      | Design.In -> startpoints := Sp_port { sp_pin = Design.port_pin design p } :: !startpoints
      | Design.Out -> endpoints := Ep_port { ep_pin = Design.port_pin design p } :: !endpoints);
  let arcs = Array.of_list (List.rev !arcs) in
  (* Kahn topological sort; cycles broken by discarding the remaining
     arcs (recorded for diagnostics). *)
  let indeg = Array.make n 0 in
  Array.iter (fun a -> indeg.(a.a_dst) <- indeg.(a.a_dst) + 1) arcs;
  let queue = Queue.create () in
  for p = 0 to n - 1 do
    if indeg.(p) = 0 then Queue.add p queue
  done;
  let topo = Array.make n (-1) in
  let pos = ref 0 in
  while not (Queue.is_empty queue) do
    let p = Queue.take queue in
    topo.(!pos) <- p;
    incr pos;
    List.iter
      (fun aid ->
        let dst = arcs.(aid).a_dst in
        indeg.(dst) <- indeg.(dst) - 1;
        if indeg.(dst) = 0 then Queue.add dst queue)
      out_arcs.(p)
  done;
  let broken_arcs = ref [] in
  if !pos < n then begin
    (* Combinational loop: the unresolved pins keep a nonzero indegree.
       Append them in id order and record their incoming arcs from other
       unresolved pins as broken. *)
    let placed = Array.make n false in
    Array.iteri (fun i p -> if i < !pos && p >= 0 then placed.(p) <- true) topo;
    for p = 0 to n - 1 do
      if not placed.(p) then begin
        topo.(!pos) <- p;
        incr pos;
        List.iter
          (fun aid ->
            if not placed.(arcs.(aid).a_src) then
              broken_arcs := aid :: !broken_arcs)
          in_arcs.(p);
        placed.(p) <- true
      end
    done
  end;
  let topo_pos = Array.make n 0 in
  Array.iteri (fun i p -> topo_pos.(p) <- i) topo;
  let loads = Array.make n 0. in
  Design.iter_nets design (fun net ->
      match Design.net_driver design net with
      | Some drv -> loads.(drv) <- load_of_driver design env wlm drv
      | None -> ());
  {
    design;
    arcs;
    out_arcs;
    in_arcs;
    topo;
    topo_pos;
    endpoints = List.rev !endpoints;
    startpoints = List.rev !startpoints;
    broken_arcs = !broken_arcs;
    loads;
  }

let n_pins t = Array.length t.out_arcs
let arc t i = t.arcs.(i)

let endpoint_pin = function
  | Ep_reg { ep_data; _ } -> ep_data
  | Ep_port { ep_pin } -> ep_pin

let startpoint_pin = function
  | Sp_reg { sp_clock; _ } -> sp_clock
  | Sp_port { sp_pin } -> sp_pin

let endpoint_pins t = List.map endpoint_pin t.endpoints

let is_clock_pin t pin =
  match Design.pin_role t.design pin with
  | Some Lib_cell.Clock_in -> true
  | Some _ | None -> false
