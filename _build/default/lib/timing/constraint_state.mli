(** The constraint state of a set of paths (paper section 2).

    Any SDC constraint's effect is captured at endpoints as a state:
    disabled, false path, multicycle, min/max delay, or valid
    (unconstrained). When several exceptions overlap the same path,
    precedence applies; the paper's example has false-path overriding
    multicycle. The implemented order, strongest first:

    Disabled > False_path > Max_delay/Min_delay > Multicycle > Valid

    and within a kind the numerically tighter value wins. *)

type t =
  | Valid
  | Disabled
  | False_path
  | Multicycle of int  (** cycle multiplier *)
  | Max_delay_bound of float
  | Min_delay_bound of float

val rank : t -> int
(** Strength for precedence; larger = stronger. *)

val strongest : t list -> t
(** [Valid] for the empty list. *)

val of_exceptions : setup:bool -> Mm_sdc.Mode.exc list -> t
(** Combine the exceptions matching one path into its state, keeping
    only those applicable to the analysis type ([setup] = max paths). *)

val compare : t -> t -> int
val equal : t -> t -> bool
val to_string : t -> string
(** Compact table form: ["V"], ["FP"], ["MCP(2)"], ["DIS"],
    ["MAX(1.5)"], ["MIN(0.2)"]. *)
