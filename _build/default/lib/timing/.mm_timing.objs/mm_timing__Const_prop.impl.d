lib/timing/const_prop.ml: Array Graph Hashtbl List Mm_netlist Mm_sdc String
