lib/timing/graph.ml: Array Float Hashtbl List Mm_netlist Mm_sdc Option Queue
