lib/timing/corner.mli:
