lib/timing/context.ml: Array Clock_prop Const_prop Excmatch Graph List Mm_netlist Mm_sdc Option
