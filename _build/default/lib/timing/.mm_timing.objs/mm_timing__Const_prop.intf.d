lib/timing/const_prop.mli: Graph Mm_netlist Mm_sdc
