lib/timing/constraint_state.ml: Float List Mm_sdc Printf Stdlib
