lib/timing/excmatch.ml: Array Clock_prop Constraint_state Graph Hashtbl List Mm_netlist Mm_sdc Option
