lib/timing/context.mli: Clock_prop Const_prop Excmatch Graph Mm_netlist Mm_sdc
