lib/timing/sta.mli: Context Corner Hashtbl Mm_netlist Mm_sdc
