lib/timing/sta.ml: Array Buffer Clock_prop Const_prop Constraint_state Context Corner Excmatch Float Graph Hashtbl List Mm_netlist Mm_sdc Option Printf Unix
