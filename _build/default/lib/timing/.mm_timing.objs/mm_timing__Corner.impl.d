lib/timing/corner.ml:
