lib/timing/graph.mli: Mm_netlist Mm_sdc
