lib/timing/constraint_state.mli: Mm_sdc
