lib/timing/clock_prop.ml: Array Const_prop Float Graph Hashtbl List Mm_netlist Mm_sdc Option
