lib/timing/clock_prop.mli: Const_prop Graph Mm_netlist Mm_sdc
