lib/timing/excmatch.mli: Clock_prop Constraint_state Graph Mm_netlist Mm_sdc
