(** Clock propagation through the clock network.

    Each mode clock is swept from its source pins through enabled
    combinational and net arcs (never through register launch arcs) in
    topological order, honouring [set_clock_sense -stop_propagation]
    constraints. The result records, per pin, the set of clocks present
    (as a bitmask over the mode's clock order) and the min/max
    insertion delay of each clock at each reached pin.

    This is the machinery behind the paper's clock refinement (3.1.8):
    comparing per-node clock sets between merged and individual modes. *)

type t

exception Too_many_clocks of int

val run : Graph.t -> Const_prop.t -> Mm_sdc.Mode.t -> t
(** @raise Too_many_clocks beyond 62 clocks (bitmask width). *)

val n_clocks : t -> int
val clock_name : t -> int -> string
val clock_index : t -> string -> int option
val mask_at : t -> Mm_netlist.Design.pin_id -> int
val clocks_at : t -> Mm_netlist.Design.pin_id -> string list
val has_clock : t -> Mm_netlist.Design.pin_id -> int -> bool

val arrival : t -> Mm_netlist.Design.pin_id -> int -> (float * float) option
(** Min/max network insertion delay of clock [i] at [pin], when the
    clock reaches it. *)

val mask_of_clock_names : t -> string list -> int
(** Bitmask of the named clocks (unknown names ignored). *)
