module Design = Mm_netlist.Design
module Lib_cell = Mm_netlist.Lib_cell
module Logic = Mm_netlist.Logic
module Mode = Mm_sdc.Mode

type t = {
  values : Logic.tri array;
  arc_enabled : bool array;
  pin_disabled : bool array;
}

let run (g : Graph.t) (mode : Mode.t) =
  let design = g.Graph.design in
  let n = Graph.n_pins g in
  let values = Array.make n Logic.X in
  let forced = Array.make n false in
  List.iter
    (fun (pin, v) ->
      values.(pin) <- Logic.tri_of_bool v;
      forced.(pin) <- true)
    mode.Mode.cases;
  (* Propagate constants in topological order. Forced pins keep their
     case value regardless of drivers. *)
  Array.iter
    (fun pin ->
      if not forced.(pin) then begin
        match Design.pin_owner design pin with
        | Design.Port_pin _ -> () (* inputs unknown unless cased *)
        | Design.Inst_pin (inst, idx) ->
          let cell = Design.inst_cell design inst in
          if cell.Lib_cell.pins.(idx).Lib_cell.dir = Lib_cell.Output then begin
            (* Sequential outputs stay X; combinational outputs evaluate
               their function. *)
            match Lib_cell.function_of_output cell idx with
            | Some f ->
              let env i = values.(Design.inst_pin design inst i) in
              values.(pin) <- Logic.eval env f
            | None -> ()
          end
          else begin
            (* Input pin: copy the net driver's value. *)
            match Design.pin_net design pin with
            | None -> ()
            | Some net -> (
              match Design.net_driver design net with
              | Some drv when drv <> pin -> values.(pin) <- values.(drv)
              | Some _ | None -> ())
          end
      end)
    g.Graph.topo;
  (* Disables. *)
  let pin_disabled = Array.make n false in
  let arc_disabled = Hashtbl.create 16 in
  List.iter
    (function
      | Mode.Dis_pin pin -> pin_disabled.(pin) <- true
      | Mode.Dis_inst (inst, from_, to_) ->
        let cell = Design.inst_cell design inst in
        let matches name spec =
          match spec with None -> true | Some s -> String.equal s name
        in
        Array.iteri
          (fun aid a ->
            if a.Graph.a_inst = inst && a.Graph.a_kind <> Graph.Net then begin
              let pin_name_of p =
                match Design.pin_owner design p with
                | Design.Inst_pin (_, i) ->
                  cell.Lib_cell.pins.(i).Lib_cell.pin_name
                | Design.Port_pin _ -> ""
              in
              if
                matches (pin_name_of a.Graph.a_src) from_
                && matches (pin_name_of a.Graph.a_dst) to_
              then Hashtbl.replace arc_disabled aid ()
            end)
          g.Graph.arcs)
    mode.Mode.disables;
  let broken = Hashtbl.create 16 in
  List.iter (fun aid -> Hashtbl.replace broken aid ()) g.Graph.broken_arcs;
  (* Arc enablement. *)
  let arc_enabled =
    Array.mapi
      (fun aid a ->
        let src = a.Graph.a_src and dst = a.Graph.a_dst in
        if
          Hashtbl.mem arc_disabled aid
          || Hashtbl.mem broken aid
          || pin_disabled.(src)
          || pin_disabled.(dst)
          || values.(src) <> Logic.X
          || values.(dst) <> Logic.X
        then false
        else
          match a.Graph.a_kind with
          | Graph.Net | Graph.Launch -> true
          | Graph.Comb -> (
            match Design.pin_owner design dst with
            | Design.Inst_pin (inst, out_idx) -> (
              let cell = Design.inst_cell design inst in
              match Lib_cell.function_of_output cell out_idx with
              | Some f -> (
                let env i = values.(Design.inst_pin design inst i) in
                match Design.pin_owner design src with
                | Design.Inst_pin (_, in_idx) -> Logic.observable env f in_idx
                | Design.Port_pin _ -> true)
              | None -> true)
            | Design.Port_pin _ -> true))
      g.Graph.arcs
  in
  { values; arc_enabled; pin_disabled }

let value t pin = t.values.(pin)
let enabled t aid = t.arc_enabled.(aid)

let pin_active t pin =
  (not t.pin_disabled.(pin)) && t.values.(pin) = Mm_netlist.Logic.X
