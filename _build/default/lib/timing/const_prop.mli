(** Case-analysis constant propagation and arc enablement.

    Constants come from [set_case_analysis], tie cells and anything
    they imply through cell functions (computed in topological order
    with three-valued logic). An arc is enabled when

    - neither endpoint carries a constant,
    - neither endpoint is disabled by [set_disable_timing],
    - for cell arcs, the input can still influence the output under the
      current constants (a mux with its select cased off propagates
      only the selected data input, which is what makes the paper's
      clock-refinement examples work), and
    - the arc is not a loop-breaking casualty. *)

type t = {
  values : Mm_netlist.Logic.tri array;  (** per pin *)
  arc_enabled : bool array;             (** per arc index *)
  pin_disabled : bool array;            (** per pin *)
}

val run : Graph.t -> Mm_sdc.Mode.t -> t

val value : t -> Mm_netlist.Design.pin_id -> Mm_netlist.Logic.tri
val enabled : t -> int -> bool
(** [enabled t arc_index] *)

val pin_active : t -> Mm_netlist.Design.pin_id -> bool
(** Not disabled and not constant: the pin can carry transitions. *)
