type t = {
  corner_name : string;
  derate_max : float;
  derate_min : float;
  extra_setup : float;
  extra_hold : float;
}

let make ?(derate_max = 1.0) ?(derate_min = 1.0) ?(extra_setup = 0.)
    ?(extra_hold = 0.) corner_name =
  { corner_name; derate_max; derate_min; extra_setup; extra_hold }

let typical = make "typical"
let slow = make ~derate_max:1.25 ~derate_min:1.1 ~extra_setup:0.02 "slow"
let fast = make ~derate_max:0.85 ~derate_min:0.7 ~extra_hold:0.01 "fast"
let standard_set = [ typical; slow; fast ]
