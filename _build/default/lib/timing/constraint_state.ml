module Mode = Mm_sdc.Mode

type t =
  | Valid
  | Disabled
  | False_path
  | Multicycle of int
  | Max_delay_bound of float
  | Min_delay_bound of float

let rank = function
  | Disabled -> 5
  | False_path -> 4
  | Max_delay_bound _ -> 3
  | Min_delay_bound _ -> 2
  | Multicycle _ -> 1
  | Valid -> 0

let stronger a b =
  let ra = rank a and rb = rank b in
  if ra <> rb then if ra > rb then a else b
  else
    (* Same kind: the tighter constraint wins. *)
    match a, b with
    | Multicycle x, Multicycle y -> Multicycle (max x y)
    | Max_delay_bound x, Max_delay_bound y -> Max_delay_bound (Float.min x y)
    | Min_delay_bound x, Min_delay_bound y -> Min_delay_bound (Float.max x y)
    | Valid, _ | Disabled, _ | False_path, _ -> a
    | (Multicycle _ | Max_delay_bound _ | Min_delay_bound _), _ -> a

let strongest = function
  | [] -> Valid
  | s :: rest -> List.fold_left stronger s rest

let of_exceptions ~setup excs =
  let applicable (e : Mode.exc) =
    if setup then e.exc_setup else e.exc_hold
  in
  let state_of (e : Mode.exc) =
    match e.exc_kind with
    | Mode.False_path -> False_path
    | Mode.Multicycle { mult; _ } -> Multicycle mult
    | Mode.Min_delay v -> Min_delay_bound v
    | Mode.Max_delay v -> Max_delay_bound v
  in
  strongest (List.map state_of (List.filter applicable excs))

let compare a b = Stdlib.compare a b
let equal a b = Stdlib.compare a b = 0

let to_string = function
  | Valid -> "V"
  | Disabled -> "DIS"
  | False_path -> "FP"
  | Multicycle n -> Printf.sprintf "MCP(%d)" n
  | Max_delay_bound v -> Printf.sprintf "MAX(%g)" v
  | Min_delay_bound v -> Printf.sprintf "MIN(%g)" v
