(** The timing graph.

    Nodes are design pins; arcs are cell arcs (input to output, derived
    from cell functions), launch arcs (register clock pin to outputs)
    and net arcs (driver to sinks). Arc delays are computed at build
    time from the linear cell model plus the wire-load model, including
    the mode's environment constraints (set_load / set_drive /
    set_input_transition) — which is why a graph is built per
    (design, mode) pair, mirroring how an STA tool loads a constraint
    set. *)

type arc_kind = Comb | Net | Launch

(** Transition-sense of an arc: a [Positive] arc propagates a rising
    input as a rising output, [Negative] inverts, [Non_unate] can do
    either (XOR, mux data-vs-select, register launch). Drives the
    rise/fall dimension of exception matching. *)
type unate = Positive | Negative | Non_unate

type arc = {
  a_src : Mm_netlist.Design.pin_id;
  a_dst : Mm_netlist.Design.pin_id;
  a_kind : arc_kind;
  a_inst : int;  (** owning instance for Comb/Launch; -1 for Net *)
  a_unate : unate;
  a_dmin : float;
  a_dmax : float;
}

type endpoint =
  | Ep_reg of {
      ep_data : Mm_netlist.Design.pin_id;
      ep_clock : Mm_netlist.Design.pin_id;
      ep_inst : Mm_netlist.Design.inst_id;
      ep_setup : float;
      ep_hold : float;
      ep_edge : Mm_netlist.Lib_cell.edge;
    }
  | Ep_port of { ep_pin : Mm_netlist.Design.pin_id }

type startpoint =
  | Sp_reg of {
      sp_clock : Mm_netlist.Design.pin_id;
      sp_inst : Mm_netlist.Design.inst_id;
      sp_outputs : Mm_netlist.Design.pin_id list;
      sp_clk_to_q : float;
      sp_edge : Mm_netlist.Lib_cell.edge;
    }
  | Sp_port of { sp_pin : Mm_netlist.Design.pin_id }

type t = {
  design : Mm_netlist.Design.t;
  arcs : arc array;
  out_arcs : int list array;  (** arc indices leaving each pin *)
  in_arcs : int list array;   (** arc indices entering each pin *)
  topo : int array;           (** pins in topological order *)
  topo_pos : int array;       (** inverse permutation of [topo] *)
  endpoints : endpoint list;
  startpoints : startpoint list;
  broken_arcs : int list;     (** arcs dropped to break combinational loops *)
  loads : float array;
      (** per pin: capacitive load driven (pF); 0 for non-drivers.
          Includes set_load and the wire-load estimate — the quantity
          checked against set_max_capacitance. *)
}

val build : Mm_netlist.Design.t -> Mm_sdc.Mode.t -> t
(** Build the graph with delays reflecting [mode]'s environment
    constraints. Loops (if any) are broken at an arbitrary arc, which is
    recorded in [broken_arcs]. *)

val n_pins : t -> int
val arc : t -> int -> arc

val endpoint_pin : endpoint -> Mm_netlist.Design.pin_id
val startpoint_pin : startpoint -> Mm_netlist.Design.pin_id
(** Canonical node of the point: data pin for register endpoints,
    clock pin for register startpoints, the port pin otherwise. *)

val endpoint_pins : t -> Mm_netlist.Design.pin_id list
val is_clock_pin : t -> Mm_netlist.Design.pin_id -> bool
