(** PVT corners.

    The paper's motivation is the scenario explosion
    [#modes x #corners]; mode merging attacks the first factor and is
    corner-independent. A corner scales the delay model (process /
    voltage / temperature derating) and tightens checks; running STA
    over [modes x corners] with merged modes multiplies the paper's
    runtime saving by the corner count unchanged. *)

type t = {
  corner_name : string;
  derate_max : float;   (** multiplier on max-path (late) delays *)
  derate_min : float;   (** multiplier on min-path (early) delays *)
  extra_setup : float;  (** additive setup margin, ns *)
  extra_hold : float;   (** additive hold margin, ns *)
}

val typical : t
(** Unit derates, no extra margin. *)

val slow : t
(** Worst-case (setup-critical): late delays inflated. *)

val fast : t
(** Best-case (hold-critical): early delays deflated. *)

val standard_set : t list
(** [typical; slow; fast]. *)

val make :
  ?derate_max:float ->
  ?derate_min:float ->
  ?extra_setup:float ->
  ?extra_hold:float ->
  string ->
  t
