lib/util/glob.mli:
