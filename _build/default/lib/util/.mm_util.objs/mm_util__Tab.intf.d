lib/util/tab.mli:
