lib/util/toler.mli:
