lib/util/stat.mli:
