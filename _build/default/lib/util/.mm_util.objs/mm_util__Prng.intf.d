lib/util/prng.mli:
