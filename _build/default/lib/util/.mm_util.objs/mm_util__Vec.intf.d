lib/util/vec.mli:
