lib/util/stat.ml: List Printf
