lib/util/tab.ml: Array Buffer List String
