lib/util/toler.ml: Float
