(** Deterministic splitmix64 PRNG.

    The workload generators must be reproducible across runs and
    platforms, so they avoid [Random] and use this self-contained
    splitmix64 implementation with an explicit seed. *)

type t

val create : int -> t
(** [create seed] makes an independent generator. *)

val copy : t -> t

val next : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0 .. bound-1]. [bound] > 0. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val range : t -> int -> int -> int
(** [range t lo hi] draws uniformly from [lo .. hi] inclusive. *)

val pick : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
