type t = { rel : float; abs : float }

let default = { rel = 0.025; abs = 1e-9 }
let exact = { rel = 0.; abs = 0. }
let make ?(rel = 0.025) ?(abs = 1e-9) () = { rel; abs }

let within t a b =
  let magnitude = Float.max (Float.abs a) (Float.abs b) in
  Float.abs (a -. b) <= Float.max (t.rel *. magnitude) t.abs

let within_opt t a b =
  match a, b with
  | None, None -> true
  | Some a, Some b -> within t a b
  | None, Some _ | Some _, None -> false

let merge_min a b = Float.min a b
let merge_max a b = Float.max a b
