(** Growable arrays used by the netlist and timing-graph builders.

    A thin imperative vector: amortised O(1) [push], O(1) random access.
    Indices handed out by [push] are stable, which is what the netlist
    uses as entity ids. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** [push v x] appends [x] and returns its index. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val exists : ('a -> bool) -> 'a t -> bool
val find_index : ('a -> bool) -> 'a t -> int option
