type t = { pattern : string; literal : bool }

let is_meta c = c = '*' || c = '?'

let compile pattern =
  let literal = not (String.exists is_meta pattern) in
  { pattern; literal }

let pattern t = t.pattern
let is_literal t = t.literal
let literal t = if t.literal then Some t.pattern else None

(* Iterative glob match with single-star backtracking: classic two-pointer
   algorithm, linear in [String.length s * number-of-stars] worst case. *)
let matches t s =
  if t.literal then String.equal t.pattern s
  else begin
    let p = t.pattern in
    let np = String.length p and ns = String.length s in
    let rec go ip is star_ip star_is =
      if is >= ns then
        (* Consume trailing stars in the pattern. *)
        let rec only_stars i = i = np || (p.[i] = '*' && only_stars (i + 1)) in
        if only_stars ip then true
        else backtrack star_ip star_is
      else if ip < np && (p.[ip] = '?' || p.[ip] = s.[is]) then
        go (ip + 1) (is + 1) star_ip star_is
      else if ip < np && p.[ip] = '*' then
        (* Record the star position; first try matching it to "". *)
        go (ip + 1) is ip is
      else backtrack star_ip star_is
    and backtrack star_ip star_is =
      (* Extend the last star by one character and retry; give up when
         there is no star or it cannot absorb more input. *)
      if star_ip < 0 || star_is + 1 > ns then false
      else go (star_ip + 1) (star_is + 1) star_ip (star_is + 1)
    in
    go 0 0 (-1) (-1)
  end

let matches_string ~pattern s = matches (compile pattern) s
