(** Small numeric helpers used by the benchmark harness and reports. *)

val mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val percent : float -> float -> float
(** [percent part whole] is [100 * part / whole]; 0. when [whole = 0]. *)

val reduction_percent : float -> float -> float
(** [reduction_percent before after] is the percentage reduction from
    [before] to [after]; 0. when [before = 0]. *)

val fmt_f1 : float -> string
(** Format with one decimal, e.g. ["67.5"]. *)

val fmt_f2 : float -> string
(** Format with two decimals, e.g. ["62.52"]. *)

val fmt_time_s : float -> string
(** Seconds with three decimals, e.g. ["1.204"]. *)
