(** Plain-text table rendering for reports and paper-table reproduction.

    Produces ASCII tables in the style of the paper's Tables 1-6 so
    benches and examples can print directly comparable artefacts. *)

type align = Left | Right | Center

type t

val create : ?aligns:align list -> string list -> t
(** [create headers] starts a table. [aligns] defaults to [Left] for
    every column; when shorter than the header list the remaining
    columns are left-aligned. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are padded with empty cells; longer
    rows raise [Invalid_argument]. *)

val add_sep : t -> unit
(** Insert a horizontal separator before the next row. *)

val render : ?title:string -> t -> string
(** Render with box-drawing in pure ASCII ([+-|]). *)

val print : ?title:string -> t -> unit
(** [render] to stdout followed by a newline. *)
