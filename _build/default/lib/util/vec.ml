type 'a t = { mutable data : 'a array; mutable len : int }

let create ?(capacity = 16) () =
  ignore capacity;
  { data = [||]; len = 0 }

let length v = v.len

let grow v x =
  let cap = Array.length v.data in
  let ncap = if cap = 0 then 16 else cap * 2 in
  let data = Array.make ncap x in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1;
  v.len - 1

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))
let to_array v = Array.sub v.data 0 v.len

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let find_index p v =
  let rec go i =
    if i >= v.len then None else if p v.data.(i) then Some i else go (i + 1)
  in
  go 0
