(** Shell-style glob matching as used by SDC object queries.

    Supported metacharacters: ['*'] matches any (possibly empty) substring,
    ['?'] matches exactly one character. All other characters match
    literally. Matching is case-sensitive, as in SDC. *)

type t
(** A compiled pattern. *)

val compile : string -> t
(** [compile pattern] pre-processes [pattern] for repeated matching. *)

val pattern : t -> string
(** [pattern t] returns the original pattern string. *)

val matches : t -> string -> bool
(** [matches t s] tests whether [s] matches the pattern. *)

val is_literal : t -> bool
(** [is_literal t] is [true] when the pattern contains no metacharacter,
    i.e. it can only match itself. Used to route queries through exact
    hash lookups instead of linear scans. *)

val literal : t -> string option
(** [literal t] is [Some s] when the pattern is literal text [s]. *)

val matches_string : pattern:string -> string -> bool
(** One-shot convenience wrapper around {!compile} and {!matches}. *)
