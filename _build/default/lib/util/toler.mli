(** Tolerance-based comparison of constraint values.

    Section 3.1.2 of the paper merges clock-based constraints whose values
    are "within a certain tolerance limit"; the same policy applies to
    drive and load constraints (3.1.6). A tolerance combines a relative
    and an absolute component; two values are compatible when they differ
    by no more than [max (rel *. magnitude) abs]. *)

type t = { rel : float; abs : float }

val default : t
(** 2.5% relative, 1e-9 absolute — accepts the paper's 1.0-vs-0.98
    clock-latency example as "within the tolerance limit". *)

val exact : t
(** Zero tolerance: values must be identical. *)

val make : ?rel:float -> ?abs:float -> unit -> t

val within : t -> float -> float -> bool
(** [within t a b] tests whether [a] and [b] are compatible under [t]. *)

val within_opt : t -> float option -> float option -> bool
(** Like {!within}; [None] is only compatible with [None]. *)

val merge_min : float -> float -> float
(** Conservative merge of two [min]-type constraint values. *)

val merge_max : float -> float -> float
(** Conservative merge of two [max]-type constraint values. *)
