type align = Left | Right | Center

type line = Row of string list | Sep

type t = {
  headers : string list;
  aligns : align array;
  mutable lines : line list; (* reversed *)
}

let create ?(aligns = []) headers =
  let n = List.length headers in
  let arr = Array.make n Left in
  List.iteri (fun i a -> if i < n then arr.(i) <- a) aligns;
  { headers; aligns = arr; lines = [] }

let ncols t = List.length t.headers

let add_row t cells =
  let n = ncols t in
  let len = List.length cells in
  if len > n then invalid_arg "Tab.add_row: too many cells";
  let cells =
    if len = n then cells
    else cells @ List.init (n - len) (fun _ -> "")
  in
  t.lines <- Row cells :: t.lines

let add_sep t = t.lines <- Sep :: t.lines

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let l = fill / 2 in
      String.make l ' ' ^ s ^ String.make (fill - l) ' '

let render ?title t =
  let lines = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update cells =
    List.iteri
      (fun i c -> widths.(i) <- max widths.(i) (String.length c))
      cells
  in
  List.iter (function Row cells -> update cells | Sep -> ()) lines;
  let buf = Buffer.create 1024 in
  let sep () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let row ?(align_override = None) cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        let a =
          match align_override with Some a -> a | None -> t.aligns.(i)
        in
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad a widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match title with
  | None -> ()
  | Some s ->
    Buffer.add_string buf s;
    Buffer.add_char buf '\n');
  sep ();
  row ~align_override:(Some Center) t.headers;
  sep ();
  List.iter (function Row cells -> row cells | Sep -> sep ()) lines;
  sep ();
  Buffer.contents buf

let print ?title t = print_string (render ?title t)
