let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let percent part whole = if whole = 0. then 0. else 100. *. part /. whole

let reduction_percent before after =
  if before = 0. then 0. else 100. *. (before -. after) /. before

let fmt_f1 v = Printf.sprintf "%.1f" v
let fmt_f2 v = Printf.sprintf "%.2f" v
let fmt_time_s v = Printf.sprintf "%.3f" v
