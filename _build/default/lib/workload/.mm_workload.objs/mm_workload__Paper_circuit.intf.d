lib/workload/paper_circuit.mli: Mm_netlist Mm_sdc
