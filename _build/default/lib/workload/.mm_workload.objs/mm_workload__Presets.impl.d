lib/workload/presets.ml: Gen_design Gen_modes
