lib/workload/gen_modes.ml: Buffer Gen_design List Mm_netlist Mm_sdc Mm_util Printf String
