lib/workload/paper_circuit.ml: List Mm_netlist Mm_sdc Printf String
