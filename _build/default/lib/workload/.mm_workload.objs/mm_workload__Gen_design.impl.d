lib/workload/gen_design.ml: Array List Mm_netlist Mm_util Option Printf String
