lib/workload/presets.mli: Gen_design Gen_modes Mm_netlist Mm_sdc
