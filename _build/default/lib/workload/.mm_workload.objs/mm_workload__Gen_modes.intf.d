lib/workload/gen_modes.mli: Gen_design Mm_netlist Mm_sdc
