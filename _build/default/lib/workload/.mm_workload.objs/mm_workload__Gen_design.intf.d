lib/workload/gen_design.mli: Mm_netlist
