module Design = Mm_netlist.Design
module Library = Mm_netlist.Library
module Prng = Mm_util.Prng

type params = {
  seed : int;
  n_domains : int;
  regs_per_domain : int;
  stages : int;
  combo_depth : int;
  n_config_pins : int;
  n_clock_muxes : int;
  with_scan : bool;
  n_inputs : int;
  n_outputs : int;
  cross_domain_fraction : float;
}

let default_params =
  {
    seed = 1;
    n_domains = 2;
    regs_per_domain = 64;
    stages = 4;
    combo_depth = 3;
    n_config_pins = 4;
    n_clock_muxes = 1;
    with_scan = true;
    n_inputs = 8;
    n_outputs = 8;
    cross_domain_fraction = 0.1;
  }

type domain = {
  dom_clock_port : string;
  dom_regs : string list;
  dom_mux : string option;
  dom_mux_sel : string option;
}

type info = {
  clock_ports : string list;
  scan_clk_port : string option;
  scan_en_port : string option;
  cfg_ports : string list;
  in_ports : string list;
  out_ports : string list;
  domains : domain list;
}

let approx_cells p =
  let per_stage = max 1 (p.regs_per_domain / p.stages) in
  p.n_domains
  * ((p.stages * per_stage) + ((p.stages - 1) * per_stage * p.combo_depth) + 4)

let comb_gates =
  [| Library.and2; Library.or2; Library.nand2; Library.nor2; Library.xor2 |]

let generate p =
  let rng = Prng.create p.seed in
  let d = Design.create (Printf.sprintf "soc_seed%d" p.seed) in
  let net_id = ref 0 in
  let fresh_net prefix =
    incr net_id;
    Printf.sprintf "%s%d" prefix !net_id
  in
  (* Connect [sink] to the net driven by [src], creating the net on
     first use. All wiring goes through this to keep one net per
     driver. *)
  let attach_sink src sink =
    let src_pin = Design.pin_of_name_exn d src in
    let net =
      match Design.pin_net d src_pin with
      | Some net -> net
      | None ->
        let net = Design.get_net d (fresh_net "n") in
        Design.attach d net src_pin;
        net
    in
    Design.attach d net (Design.pin_of_name_exn d sink)
  in
  let in_port name =
    ignore (Design.add_port d name Design.In);
    name
  in
  let out_port name =
    ignore (Design.add_port d name Design.Out);
    name
  in
  let clock_ports =
    List.init p.n_domains (fun i -> in_port (Printf.sprintf "clk_%d" i))
  in
  let scan_clk_port = if p.with_scan then Some (in_port "scan_clk") else None in
  let scan_en_port = if p.with_scan then Some (in_port "scan_en") else None in
  let scan_in_port = if p.with_scan then Some (in_port "scan_in") else None in
  let cfg_ports =
    List.init p.n_config_pins (fun i -> in_port (Printf.sprintf "cfg_%d" i))
  in
  let in_ports =
    List.init p.n_inputs (fun i -> in_port (Printf.sprintf "din_%d" i))
  in
  let out_ports =
    List.init p.n_outputs (fun i -> out_port (Printf.sprintf "dout_%d" i))
  in
  let per_stage = max 1 (p.regs_per_domain / p.stages) in
  let qs = Array.make_matrix p.n_domains p.stages [] in
  let reg_cell = if p.with_scan then Library.sdff else Library.dff in
  let domains =
    List.mapi
      (fun di clk_port ->
        let alt_clock =
          match scan_clk_port with
          | Some sc -> Some sc
          | None ->
            if p.n_domains > 1 then
              Some (List.nth clock_ports ((di + 1) mod p.n_domains))
            else None
        in
        let muxed =
          di < p.n_clock_muxes && cfg_ports <> [] && alt_clock <> None
        in
        let mux_name = Printf.sprintf "cmux_%d" di in
        let sel_port =
          if muxed then
            Some (List.nth cfg_ports (di mod List.length cfg_ports))
          else None
        in
        let buf1 = Printf.sprintf "ckbuf_%d_0" di in
        let buf2 = Printf.sprintf "ckbuf_%d_1" di in
        ignore (Design.add_inst d buf1 Library.buf);
        ignore (Design.add_inst d buf2 Library.buf);
        (if muxed then begin
           ignore (Design.add_inst d mux_name Library.mux2);
           attach_sink clk_port (mux_name ^ "/D0");
           attach_sink (Option.get alt_clock) (mux_name ^ "/D1");
           attach_sink (Option.get sel_port) (mux_name ^ "/S");
           attach_sink (mux_name ^ "/Z") (buf1 ^ "/A")
         end
         else attach_sink clk_port (buf1 ^ "/A"));
        attach_sink (buf1 ^ "/Z") (buf2 ^ "/A");
        let regs = ref [] in
        for s = 0 to p.stages - 1 do
          for i = 0 to per_stage - 1 do
            let r = Printf.sprintf "r_%d_%d_%d" di s i in
            ignore (Design.add_inst d r reg_cell);
            regs := r :: !regs;
            attach_sink (buf2 ^ "/Z") (r ^ "/CP");
            qs.(di).(s) <- (r ^ "/Q") :: qs.(di).(s)
          done
        done;
        {
          dom_clock_port = clk_port;
          dom_regs = List.rev !regs;
          dom_mux = (if muxed then Some mux_name else None);
          dom_mux_sel = sel_port;
        })
      clock_ports
  in
  (* Scan chain: SE fans out to every flop; SI chains through Q. *)
  (match scan_en_port, scan_in_port with
  | Some se, Some si ->
    let all_regs = List.concat_map (fun dm -> dm.dom_regs) domains in
    let prev = ref si in
    List.iter
      (fun r ->
        attach_sink se (r ^ "/SE") |> ignore;
        attach_sink !prev (r ^ "/SI");
        prev := r ^ "/Q")
      all_regs
  | Some _, None | None, Some _ | None, None -> ());
  (* Combinational clouds between stages. *)
  let gate_id = ref 0 in
  let add_gate () =
    incr gate_id;
    let name = Printf.sprintf "g%d" !gate_id in
    ignore (Design.add_inst d name (Prng.pick rng comb_gates));
    name
  in
  let pick_source di s =
    let roll = Prng.float rng 1.0 in
    if roll < p.cross_domain_fraction && p.n_domains > 1 then begin
      let other = (di + 1 + Prng.int rng (p.n_domains - 1)) mod p.n_domains in
      Prng.pick rng (Array.of_list qs.(other).(s - 1))
    end
    else if roll > 0.95 && cfg_ports <> [] then
      List.nth cfg_ports (Prng.int rng (List.length cfg_ports))
    else Prng.pick rng (Array.of_list qs.(di).(s - 1))
  in
  for di = 0 to p.n_domains - 1 do
    for s = 1 to p.stages - 1 do
      List.iter
        (fun qpin ->
          let r = String.sub qpin 0 (String.length qpin - 2) in
          let rec chain depth prev_out =
            if depth = 0 then prev_out
            else begin
              let g = add_gate () in
              attach_sink prev_out (g ^ "/A");
              attach_sink (pick_source di s) (g ^ "/B");
              chain (depth - 1) (g ^ "/Z")
            end
          in
          let out = chain p.combo_depth (pick_source di s) in
          attach_sink out (r ^ "/D"))
        qs.(di).(s)
    done
  done;
  (* Primary data inputs feed unconnected first-stage D pins. *)
  List.iteri
    (fun i din ->
      let di = i mod p.n_domains in
      let stage0 = qs.(di).(0) in
      if stage0 <> [] then begin
        let qpin = List.nth stage0 (i mod List.length stage0) in
        let r = String.sub qpin 0 (String.length qpin - 2) in
        match Design.pin_net d (Design.pin_of_name_exn d (r ^ "/D")) with
        | Some _ -> ()
        | None -> attach_sink din (r ^ "/D")
      end)
    in_ports;
  (* Primary outputs sample last-stage Qs. *)
  List.iteri
    (fun i dout ->
      let di = i mod p.n_domains in
      let last = qs.(di).(p.stages - 1) in
      if last <> [] then begin
        let qpin = List.nth last (i mod List.length last) in
        attach_sink qpin dout
      end)
    out_ports;
  ( d,
    {
      clock_ports;
      scan_clk_port;
      scan_en_port;
      cfg_ports;
      in_ports;
      out_ports;
      domains;
    } )
