(** Synthetic SoC-style design generator.

    Stands in for the paper's confidential industrial designs (section
    4). Produces the structural features the merging algorithms
    exercise: multiple clock domains with buffer trees, clock muxes
    controlled by configuration pins, register pipelines with random
    combinational clouds, optional scan chains (SDFF + scan enable),
    cross-domain paths and data IO. Fully deterministic from [seed]. *)

type params = {
  seed : int;
  n_domains : int;          (** clock domains (>=1), one clock port each *)
  regs_per_domain : int;
  stages : int;             (** pipeline stages per domain (>=1) *)
  combo_depth : int;        (** gate depth of inter-stage clouds *)
  n_config_pins : int;      (** case-analysis configuration inputs *)
  n_clock_muxes : int;      (** domains whose clock goes through a mux *)
  with_scan : bool;
  n_inputs : int;
  n_outputs : int;
  cross_domain_fraction : float;
      (** fraction of clouds that also sample another domain *)
}

val default_params : params

(** What the mode generator needs to know about the produced design. *)
type domain = {
  dom_clock_port : string;
  dom_regs : string list;
  dom_mux : string option;       (** clock mux instance, if any *)
  dom_mux_sel : string option;   (** config port driving the mux select *)
}

type info = {
  clock_ports : string list;
  scan_clk_port : string option;
  scan_en_port : string option;
  cfg_ports : string list;
  in_ports : string list;
  out_ports : string list;
  domains : domain list;
}

val generate : params -> Mm_netlist.Design.t * info

val approx_cells : params -> int
(** Rough instance count the parameters will produce, for sizing
    presets. *)
