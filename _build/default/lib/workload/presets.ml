type preset = {
  pr_name : string;
  paper_size_mcells : float;
  paper_modes : int;
  paper_merged : int;
  paper_reduction : float;
  paper_merge_runtime_s : float;
  paper_sta_individual_s : float;
  paper_sta_merged_s : float;
  paper_sta_reduction : float;
  paper_conformity : float;
  design_params : Gen_design.params;
  suite : Gen_modes.suite_params;
}

let dp = Gen_design.default_params

let design_a =
  {
    pr_name = "A";
    paper_size_mcells = 0.2;
    paper_modes = 95;
    paper_merged = 16;
    paper_reduction = 83.1;
    paper_merge_runtime_s = 6205.;
    paper_sta_individual_s = 5584.;
    paper_sta_merged_s = 875.;
    paper_sta_reduction = 84.3;
    paper_conformity = 99.89;
    design_params =
      {
        dp with
        seed = 101;
        n_domains = 2;
        regs_per_domain = 200;
        stages = 4;
        combo_depth = 4;
        n_config_pins = 6;
        n_clock_muxes = 1;
      };
    suite =
      {
        Gen_modes.sp_seed = 201;
        families = [ 7; 7; 7; 7; 6; 6; 6; 6; 6; 6; 6; 6; 6; 6; 5; 2 ];
        base_period = 2.0;
        scan_family = true;
      };
  }

let design_b =
  {
    pr_name = "B";
    paper_size_mcells = 0.2;
    paper_modes = 3;
    paper_merged = 1;
    paper_reduction = 66.6;
    paper_merge_runtime_s = 85.;
    paper_sta_individual_s = 339.;
    paper_sta_merged_s = 140.;
    paper_sta_reduction = 58.7;
    paper_conformity = 100.;
    design_params = { design_a.design_params with seed = 102 };
    suite =
      {
        Gen_modes.sp_seed = 202;
        families = [ 3 ];
        base_period = 2.0;
        scan_family = false;
      };
  }

let design_c =
  {
    pr_name = "C";
    paper_size_mcells = 0.3;
    paper_modes = 12;
    paper_merged = 1;
    paper_reduction = 75.0;
    paper_merge_runtime_s = 890.;
    paper_sta_individual_s = 820.;
    paper_sta_merged_s = 398.;
    paper_sta_reduction = 51.5;
    paper_conformity = 99.91;
    design_params =
      {
        dp with
        seed = 103;
        n_domains = 2;
        regs_per_domain = 300;
        stages = 4;
        combo_depth = 5;
        n_config_pins = 6;
        n_clock_muxes = 1;
      };
    suite =
      {
        Gen_modes.sp_seed = 203;
        families = [ 12 ];
        base_period = 1.5;
        scan_family = false;
      };
  }

let design_d =
  {
    pr_name = "D";
    paper_size_mcells = 1.4;
    paper_modes = 3;
    paper_merged = 1;
    paper_reduction = 66.6;
    paper_merge_runtime_s = 450.;
    paper_sta_individual_s = 1003.;
    paper_sta_merged_s = 419.;
    paper_sta_reduction = 58.2;
    paper_conformity = 99.18;
    design_params =
      {
        dp with
        seed = 104;
        n_domains = 3;
        regs_per_domain = 900;
        stages = 5;
        combo_depth = 5;
        n_config_pins = 8;
        n_clock_muxes = 2;
      };
    suite =
      {
        Gen_modes.sp_seed = 204;
        families = [ 3 ];
        base_period = 1.2;
        scan_family = false;
      };
  }

let design_e =
  {
    pr_name = "E";
    paper_size_mcells = 1.6;
    paper_modes = 5;
    paper_merged = 1;
    paper_reduction = 80.0;
    paper_merge_runtime_s = 459.;
    paper_sta_individual_s = 846.;
    paper_sta_merged_s = 329.;
    paper_sta_reduction = 61.1;
    paper_conformity = 99.93;
    design_params =
      {
        dp with
        seed = 105;
        n_domains = 4;
        regs_per_domain = 800;
        stages = 5;
        combo_depth = 5;
        n_config_pins = 8;
        n_clock_muxes = 2;
      };
    suite =
      {
        Gen_modes.sp_seed = 205;
        families = [ 5 ];
        base_period = 1.0;
        scan_family = false;
      };
  }

let design_f =
  {
    pr_name = "F";
    paper_size_mcells = 2.8;
    paper_modes = 3;
    paper_merged = 2;
    paper_reduction = 33.3;
    paper_merge_runtime_s = 1424.;
    paper_sta_individual_s = 2593.;
    paper_sta_merged_s = 1004.;
    paper_sta_reduction = 61.3;
    paper_conformity = 100.;
    design_params =
      {
        dp with
        seed = 106;
        n_domains = 4;
        regs_per_domain = 1400;
        stages = 5;
        combo_depth = 5;
        n_config_pins = 8;
        n_clock_muxes = 2;
      };
    suite =
      {
        Gen_modes.sp_seed = 206;
        families = [ 2; 1 ];
        base_period = 1.0;
        scan_family = false;
      };
  }

let all = [ design_a; design_b; design_c; design_d; design_e; design_f ]

let tiny =
  {
    design_a with
    pr_name = "tiny";
    paper_modes = 4;
    paper_merged = 2;
    design_params =
      {
        dp with
        seed = 42;
        n_domains = 2;
        regs_per_domain = 24;
        stages = 3;
        combo_depth = 2;
        n_config_pins = 3;
        n_clock_muxes = 1;
      };
    suite =
      {
        Gen_modes.sp_seed = 242;
        families = [ 2; 2 ];
        base_period = 2.0;
        scan_family = true;
      };
  }

let build p =
  let design, info = Gen_design.generate p.design_params in
  let modes = Gen_modes.generate design info p.suite in
  design, info, modes
