(** The paper's example circuit (Figure 1) and Constraint Sets 1-6.

    The circuit: six registers rA..rC (clocked from port clk1) and
    rX..rZ (clocked through mux1, which selects between clk1 and clk2
    under the control of XOR(sel1, sel2)); data paths

    - rA/Q -> inv1/Z -> rX/D                                  (path i)
    - rA/Q -> inv1/Z -> and1/Z -> inv2/Z -> rY/D              (path ii)
    - rB/Q -> and1/Z -> inv2/Z -> rY/D                        (path iii)
    - rC/Q -> and2/A -> and2/Z -> rZ/D
    - rC/Q -> inv3/A -> inv3/Z -> and2/B -> and2/Z -> rZ/D

    plus in1 -> rA/D and rZ/Q -> out1 for the IO-delay examples, and
    two spare clock ports clk3/clk4 for Constraint Set 2's four-clock
    union. Where the paper abbreviates constraints (omitted periods in
    Constraint Set 4, elided waveforms), concrete values consistent
    with the prose are filled in. *)

val build : unit -> Mm_netlist.Design.t

(** Each constraint set yields named modes resolved against a fresh
    copy of the circuit. The design is shared by the modes of one
    call. *)

val constraint_set1 :
  Mm_netlist.Design.t -> Mm_sdc.Mode.t
(** Clock + MCP through inv1/Z + FP through and1/Z (Table 1). *)

val constraint_set2 :
  Mm_netlist.Design.t -> Mm_sdc.Mode.t * Mm_sdc.Mode.t
(** Modes A and B for the clock-union and latency-merge demo. *)

val constraint_set3 :
  Mm_netlist.Design.t -> Mm_sdc.Mode.t * Mm_sdc.Mode.t
(** Conflicting case analysis on sel1/sel2 (clock refinement demo). *)

val constraint_set4 :
  Mm_netlist.Design.t -> Mm_sdc.Mode.t * Mm_sdc.Mode.t
(** Exception uniquification demo (MCP -from rA/CP in mode A only). *)

val constraint_set5 :
  Mm_netlist.Design.t -> Mm_sdc.Mode.t * Mm_sdc.Mode.t
(** Data refinement by stopping clock propagation (case on rB/Q). *)

val constraint_set6 :
  Mm_netlist.Design.t -> Mm_sdc.Mode.t * Mm_sdc.Mode.t
(** The 3-pass demo: disjoint false-path sets (Tables 2-4). *)
