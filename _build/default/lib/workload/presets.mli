(** Scaled analogues of the paper's industrial designs A-F.

    Cell counts are scaled ~1:100 from the paper's 0.2-2.8 million
    (wire-load STA over millions of cells is out of scope for a
    single-threaded reproduction); the mode counts and the expected
    merged-mode counts are kept exactly as Table 5 reports them
    (95->16, 3->1, 12->1, 3->1, 5->1, 3->2). The paper's published
    numbers ride along for EXPERIMENTS.md's paper-vs-measured tables. *)

type preset = {
  pr_name : string;
  paper_size_mcells : float;
  paper_modes : int;
  paper_merged : int;
  paper_reduction : float;      (** % *)
  paper_merge_runtime_s : float;
  paper_sta_individual_s : float;
  paper_sta_merged_s : float;
  paper_sta_reduction : float;  (** % *)
  paper_conformity : float;     (** % *)
  design_params : Gen_design.params;
  suite : Gen_modes.suite_params;
}

val design_a : preset
val design_b : preset
val design_c : preset
val design_d : preset
val design_e : preset
val design_f : preset
val all : preset list

val tiny : preset
(** A very small preset (hundreds of cells, 4 modes in 2 families) for
    unit/integration tests. *)

val build :
  preset -> Mm_netlist.Design.t * Gen_design.info * Mm_sdc.Mode.t list
