(** Synthetic mode-suite generator.

    Produces N timing modes over a generated design, organised into
    "families". Modes within a family differ only in ways the paper's
    algorithm can reconcile — conflicting case analysis (dropped and
    compensated by refinement), mode-local false paths (dropped or
    uniquified), extra IO delays — so a family forms a clique of the
    mergeability graph. Across families, hard incompatibilities are
    planted (drive/load values and clock attributes beyond tolerance),
    so distinct families cannot merge. The expected merged mode count
    therefore equals the family count, mirroring the individual/merged
    columns of the paper's Table 5. *)

type suite_params = {
  sp_seed : int;
  families : int list;
      (** modes per family; [List.length families] = expected merged
          count; one family may be a scan family (see below) *)
  base_period : float;           (** domain-0 clock period, ns *)
  scan_family : bool;
      (** make the last family scan-shift modes (scan clock + scan
          enable case) when the design has scan *)
}

val default_suite : suite_params

val generate :
  Mm_netlist.Design.t ->
  Gen_design.info ->
  suite_params ->
  Mm_sdc.Mode.t list
(** Deterministic from [sp_seed]; modes are named
    ["m<family>_<index>"]. Raises [Failure] if the SDC any mode needs
    fails to resolve (generator bug guard). *)

val sdc_of_mode_spec :
  Gen_design.info -> suite_params -> family:int -> index:int -> string
(** The SDC text used for one mode — exposed so tests and the CLI demo
    can show/parse the same constraints. *)
