module Design = Mm_netlist.Design
module Tab = Mm_util.Tab
module Cs = Mm_timing.Constraint_state

let relations_table design rels =
  let t =
    Tab.create
      [ "Start point"; "End point"; "Launch clock"; "Capture clock"; "State" ]
  in
  List.iter
    (fun (ep, rs) ->
      let name = Design.pin_name design ep in
      match rs with
      | [] -> Tab.add_row t [ "*"; name; "-"; "-"; "-" ]
      | _ ->
        (* Group rows by (launch, capture). *)
        let keys =
          List.sort_uniq compare
            (List.map (fun (r : Relation.t) -> r.Relation.launch, r.Relation.capture) rs)
        in
        List.iter
          (fun (launch, capture) ->
            let states =
              List.filter
                (fun (r : Relation.t) ->
                  r.Relation.launch = launch && r.Relation.capture = capture)
                rs
              |> Relation.states_of
              |> List.filter (fun s -> s <> Cs.Valid)
            in
            let state_str =
              match states with
              | [] -> "-"
              | _ -> String.concat ", " (List.map Cs.to_string states)
            in
            Tab.add_row t [ "*"; name; launch; capture; state_str ])
          keys)
    rels;
  t

let bucket_cells (b : Compare.bucket) =
  [
    b.Compare.bk_launch;
    b.Compare.bk_capture;
    Compare.states_to_string b.Compare.bk_ind;
    Compare.states_to_string b.Compare.bk_mrg;
    Compare.verdict_to_string b.Compare.bk_verdict;
  ]

let pass1_table design rows =
  let t =
    Tab.create
      [
        "Start point"; "End point"; "Launch clock"; "Capture clock";
        "Individual mode state"; "Merged mode state"; "Pass1 result";
      ]
  in
  List.iter
    (fun (r : Compare.pass1_row) ->
      Tab.add_row t
        ("*" :: Design.pin_name design r.Compare.p1_ep :: bucket_cells r.Compare.p1_bucket))
    rows;
  t

let pass2_table design rows =
  let t =
    Tab.create
      [
        "Start point"; "End point"; "Launch clock"; "Capture clock";
        "Individual mode state"; "Merged mode state"; "Pass2 result";
      ]
  in
  List.iter
    (fun (r : Compare.pass2_row) ->
      Tab.add_row t
        (Design.pin_name design r.Compare.p2_sp
        :: Design.pin_name design r.Compare.p2_ep
        :: bucket_cells r.Compare.p2_bucket))
    rows;
  t

let pass3_table design rows =
  let t =
    Tab.create
      [
        "Start point"; "Through"; "End point"; "Launch clock"; "Capture clock";
        "Indiv. mode state"; "Merged mode state"; "Pass3 result";
      ]
  in
  List.iter
    (fun (r : Compare.pass3_row) ->
      Tab.add_row t
        (Design.pin_name design r.Compare.p3_sp
        :: Design.pin_name design r.Compare.p3_through
        :: Design.pin_name design r.Compare.p3_ep
        :: bucket_cells r.Compare.p3_bucket))
    rows;
  t

let mergeability_text (m : Mergeability.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Mergeability graph:\n";
  Buffer.add_string buf
    (Printf.sprintf "  vertices: %s\n"
       (String.concat " " (Array.to_list m.Mergeability.mode_names)));
  let edges = Mergeability.edges m in
  Buffer.add_string buf
    (Printf.sprintf "  edges (%d): %s\n" (List.length edges)
       (String.concat " "
          (List.map
             (fun (i, j) ->
               Printf.sprintf "%s-%s" m.Mergeability.mode_names.(i)
                 m.Mergeability.mode_names.(j))
             edges)));
  List.iteri
    (fun k clique ->
      Buffer.add_string buf
        (Printf.sprintf "  M%d: {%s}\n" (k + 1)
           (String.concat ", "
              (List.map (fun i -> m.Mergeability.mode_names.(i)) clique))))
    m.Mergeability.cliques;
  Buffer.contents buf

let flow_table ~design ~cells (r : Merge_flow.result) =
  let t =
    Tab.create
      ~aligns:[ Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
      [
        "Design"; "Size (cells)"; "# Modes Individual"; "# Modes Merged";
        "% Reduction"; "Merging Runtime (s)";
      ]
  in
  Tab.add_row t (Merge_flow.summary_row ~design_name:design ~size_cells:cells r);
  t

let fixes_text design fixes =
  String.concat "\n"
    (List.map
       (fun (f : Compare.fix) ->
         Printf.sprintf "%s  # %s"
           (Mm_sdc.Writer.write_command
              (Mm_sdc.Mode.commands_of_exc design f.Compare.fix_exc))
           f.Compare.fix_reason)
       fixes)
