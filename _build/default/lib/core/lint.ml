module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Graph = Mm_timing.Graph
module Clock_prop = Mm_timing.Clock_prop
module Const_prop = Mm_timing.Const_prop
module Context = Mm_timing.Context

type finding = { lint_kind : string; lint_msg : string }

let finding lint_kind fmt =
  Printf.ksprintf (fun lint_msg -> { lint_kind; lint_msg }) fmt

let unclocked_registers (ctx : Context.t) =
  let design = ctx.Context.design in
  List.filter_map
    (function
      | Graph.Sp_reg { sp_clock; sp_inst; _ } ->
        if
          Const_prop.pin_active ctx.Context.consts sp_clock
          && Clock_prop.mask_at ctx.Context.clocks sp_clock = 0
        then
          Some
            (finding "unclocked-register" "no clock reaches %s (%s)"
               (Design.pin_name design sp_clock)
               (Design.inst_name design sp_inst))
        else None
      | Graph.Sp_port _ -> None)
    ctx.Context.graph.Graph.startpoints

let unconstrained_ports (ctx : Context.t) =
  let design = ctx.Context.design in
  let mode = ctx.Context.mode in
  let clock_sources =
    List.concat_map (fun (c : Mode.clock) -> c.Mode.sources) mode.Mode.clocks
  in
  let has_io input pin =
    List.exists
      (fun (d : Mode.io_delay) -> d.Mode.iod_input = input && d.Mode.iod_pin = pin)
      mode.Mode.io_delays
  in
  let acc = ref [] in
  Design.iter_ports design (fun p ->
      let pin = Design.port_pin design p in
      match Design.port_dir design p with
      | Design.In ->
        if
          (not (has_io true pin))
          && (not (List.mem pin clock_sources))
          && Mode.case_value mode pin = None
          && Design.fanout_pins design pin <> []
        then
          acc :=
            finding "unconstrained-input" "input port %s has no input delay"
              (Design.port_name design p)
            :: !acc
      | Design.Out ->
        if (not (has_io false pin)) && Design.pin_net design pin <> None then
          acc :=
            finding "unconstrained-output" "output port %s has no output delay"
              (Design.port_name design p)
            :: !acc);
  List.rev !acc

let unused_clocks (ctx : Context.t) =
  let used = ref 0 in
  List.iter
    (function
      | Graph.Sp_reg { sp_clock; _ } ->
        used := !used lor Clock_prop.mask_at ctx.Context.clocks sp_clock
      | Graph.Sp_port _ -> ())
    ctx.Context.graph.Graph.startpoints;
  let acc = ref [] in
  for i = 0 to Clock_prop.n_clocks ctx.Context.clocks - 1 do
    if !used land (1 lsl i) = 0 then
      acc :=
        finding "unused-clock" "clock %s clocks no register"
          (Clock_prop.clock_name ctx.Context.clocks i)
        :: !acc
  done;
  List.rev !acc

let dead_throughs (ctx : Context.t) =
  let design = ctx.Context.design in
  List.concat_map
    (fun (e : Mode.exc) ->
      List.concat_map
        (fun pins ->
          List.filter_map
            (fun pin ->
              if not (Const_prop.pin_active ctx.Context.consts pin) then
                Some
                  (finding "dead-through"
                     "exception -through %s can never match (pin constant or \
                      disabled)"
                     (Design.pin_name design pin))
              else None)
            pins)
        e.Mode.exc_through)
    ctx.Context.mode.Mode.exceptions

let cross_domain (ctx : Context.t) =
  let design = ctx.Context.design in
  List.filter_map
    (function
      | Graph.Sp_reg { sp_clock; _ } ->
        let mask = Clock_prop.mask_at ctx.Context.clocks sp_clock in
        (* more than one clock and at least one non-exclusive pair *)
        let clocks = ref [] in
        for i = 0 to Clock_prop.n_clocks ctx.Context.clocks - 1 do
          if mask land (1 lsl i) <> 0 then clocks := i :: !clocks
        done;
        let unrelated_pair =
          List.exists
            (fun a ->
              List.exists
                (fun b -> a < b && not (Context.clocks_exclusive ctx a b))
                !clocks)
            !clocks
        in
        if unrelated_pair then
          Some
            (finding "cross-domain-unrelated"
               "%s is clocked by %s with no clock-group relationship"
               (Design.pin_name design sp_clock)
               (String.concat ", "
                  (List.map (Clock_prop.clock_name ctx.Context.clocks) !clocks)))
        else None
      | Graph.Sp_port _ -> None)
    ctx.Context.graph.Graph.startpoints

let run ctx =
  unclocked_registers ctx @ unconstrained_ports ctx @ unused_clocks ctx
  @ dead_throughs ctx @ cross_domain ctx

let to_string findings =
  String.concat "\n"
    (List.map (fun f -> Printf.sprintf "[%s] %s" f.lint_kind f.lint_msg) findings)
