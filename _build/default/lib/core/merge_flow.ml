module Mode = Mm_sdc.Mode
module Stat = Mm_util.Stat

type group = {
  grp_members : string list;
  grp_prelim : Prelim.t;
  grp_refine : Refine.t option;
  grp_equiv : Equiv.report option;
  grp_mode : Mode.t;
}

type result = {
  groups : group list;
  mergeability : Mergeability.t;
  n_individual : int;
  n_merged : int;
  reduction_percent : float;
  runtime_s : float;
}

let run ?tolerance ?(check_equivalence = true) modes =
  let t0 = Unix.gettimeofday () in
  let ctx_cache = Hashtbl.create 32 in
  let mergeability = Mergeability.analyze ?tolerance ~ctx_cache modes in
  let cliques = Mergeability.clique_modes mergeability modes in
  let groups =
    List.mapi
      (fun gi members ->
        let names = List.map (fun (m : Mode.t) -> m.Mode.mode_name) members in
        let merged_name = Printf.sprintf "merged_%d" gi in
        match members with
        | [ single ] ->
          let prelim =
            Prelim.merge ?tolerance ~ctx_cache ~name:single.Mode.mode_name
              [ single ]
          in
          {
            grp_members = names;
            grp_prelim = prelim;
            grp_refine = None;
            grp_equiv = None;
            grp_mode = single;
          }
        | _ ->
          let prelim = Prelim.merge ?tolerance ~ctx_cache ~name:merged_name members in
          let refine = Refine.run ~ctx_cache ~prelim ~individual:members () in
          let equiv =
            if check_equivalence then
              Some
                (Equiv.check ~ctx_cache ~individual:members
                   ~rename:(Prelim.rename_of prelim)
                   ~merged:refine.Refine.refined ())
            else None
          in
          {
            grp_members = names;
            grp_prelim = prelim;
            grp_refine = Some refine;
            grp_equiv = equiv;
            grp_mode = refine.Refine.refined;
          })
      cliques
  in
  let n_individual = List.length modes and n_merged = List.length groups in
  {
    groups;
    mergeability;
    n_individual;
    n_merged;
    reduction_percent =
      Stat.reduction_percent (float_of_int n_individual) (float_of_int n_merged);
    runtime_s = Unix.gettimeofday () -. t0;
  }

let merged_modes r = List.map (fun g -> g.grp_mode) r.groups

let summary_row ~design_name ~size_cells r =
  [
    design_name;
    string_of_int size_cells;
    string_of_int r.n_individual;
    string_of_int r.n_merged;
    Stat.fmt_f1 r.reduction_percent;
    Stat.fmt_time_s r.runtime_s;
  ]
