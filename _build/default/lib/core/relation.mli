(** Timing relationships (paper section 2).

    A timing relationship describes a bundle of paths by launch clock,
    capture clock, endpoint (and optionally startpoint / through pin),
    and the constraint state of those paths. Comparing the
    relationships produced by two constraint sets — rather than the
    constraint texts — is the paper's central idea.

    Clock names are compared after applying a renaming (individual-mode
    clocks map to merged-mode clocks), which callers supply as part of
    building relation sets. *)

type t = {
  launch : string;
  capture : string;
  data_edge : Mm_sdc.Mode.edge_sel;
      (** polarity of the data transition at the endpoint; [Any_edge]
          unless some exception in scope is rise/fall-restricted *)
  setup_state : Mm_timing.Constraint_state.t;
  hold_state : Mm_timing.Constraint_state.t;
}

val make :
  ?data_edge:Mm_sdc.Mode.edge_sel ->
  launch:string ->
  capture:string ->
  setup:Mm_timing.Constraint_state.t ->
  hold:Mm_timing.Constraint_state.t ->
  unit ->
  t

val compare : t -> t -> int
val equal : t -> t -> bool

val normalize : t list -> t list
(** Sort and dedup. *)

val states_of : t list -> Mm_timing.Constraint_state.t list
(** Distinct setup states, sorted (the "state" column of Tables 1-4). *)

val rename : (string -> string) -> t -> t
(** Apply a clock renaming to both clock fields. *)

val to_string : t -> string
val set_to_string : t list -> string
(** e.g. ["FP, V"] — distinct setup states joined, as in the paper's
    tables. *)
