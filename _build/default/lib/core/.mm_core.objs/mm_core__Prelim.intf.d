lib/core/prelim.mli: Hashtbl Mm_netlist Mm_sdc Mm_timing Mm_util
