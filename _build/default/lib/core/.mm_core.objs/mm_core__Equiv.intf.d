lib/core/equiv.mli: Compare Format Hashtbl Mm_sdc Mm_timing
