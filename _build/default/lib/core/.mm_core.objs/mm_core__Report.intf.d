lib/core/report.mli: Compare Merge_flow Mergeability Mm_netlist Mm_util Relation
