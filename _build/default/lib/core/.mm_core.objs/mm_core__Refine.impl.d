lib/core/refine.ml: Array Compare Hashtbl List Mm_netlist Mm_sdc Mm_timing Option Prelim Relation_prop
