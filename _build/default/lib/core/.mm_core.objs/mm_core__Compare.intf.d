lib/core/compare.mli: Mm_netlist Mm_sdc Mm_timing
