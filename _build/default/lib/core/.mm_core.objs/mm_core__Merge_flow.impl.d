lib/core/merge_flow.ml: Equiv Hashtbl List Mergeability Mm_sdc Mm_util Prelim Printf Refine Unix
