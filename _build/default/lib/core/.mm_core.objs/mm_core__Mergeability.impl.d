lib/core/mergeability.ml: Array Fun Hashtbl List Mm_netlist Mm_sdc Mm_timing Prelim Printf
