lib/core/lint.ml: List Mm_netlist Mm_sdc Mm_timing Printf String
