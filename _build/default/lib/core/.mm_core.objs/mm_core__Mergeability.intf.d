lib/core/mergeability.mli: Hashtbl Mm_sdc Mm_timing Mm_util
