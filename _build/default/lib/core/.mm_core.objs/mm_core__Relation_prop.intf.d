lib/core/relation_prop.mli: Mm_netlist Mm_sdc Mm_timing Relation
