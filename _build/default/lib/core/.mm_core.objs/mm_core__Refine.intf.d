lib/core/refine.mli: Compare Hashtbl Mm_netlist Mm_sdc Mm_timing Prelim
