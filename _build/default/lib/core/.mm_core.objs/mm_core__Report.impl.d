lib/core/report.ml: Array Buffer Compare List Merge_flow Mergeability Mm_netlist Mm_sdc Mm_timing Mm_util Printf Relation String
