lib/core/relation.ml: Int List Mm_sdc Mm_timing Printf Stdlib String
