lib/core/prelim.ml: Array Bool Float Fun Hashtbl List Mm_netlist Mm_sdc Mm_timing Mm_util Option Printf String
