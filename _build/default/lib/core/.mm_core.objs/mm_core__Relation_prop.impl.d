lib/core/relation_prop.ml: Array List Mm_netlist Mm_sdc Mm_timing Option Queue Relation
