lib/core/lint.mli: Mm_timing
