lib/core/relation.mli: Mm_sdc Mm_timing
