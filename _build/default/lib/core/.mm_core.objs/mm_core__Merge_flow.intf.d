lib/core/merge_flow.mli: Equiv Mergeability Mm_sdc Mm_util Prelim Refine
