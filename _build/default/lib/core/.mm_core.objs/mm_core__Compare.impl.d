lib/core/compare.ml: Array Float Hashtbl Int List Map Mm_netlist Mm_sdc Mm_timing Option Printf Queue Relation Relation_prop Stdlib String
