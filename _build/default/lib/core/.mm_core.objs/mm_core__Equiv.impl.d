lib/core/equiv.ml: Compare Format Hashtbl List Mm_sdc Mm_timing
