module Cs = Mm_timing.Constraint_state

type t = {
  launch : string;
  capture : string;
  data_edge : Mm_sdc.Mode.edge_sel;
  setup_state : Cs.t;
  hold_state : Cs.t;
}

let make ?(data_edge = Mm_sdc.Mode.Any_edge) ~launch ~capture ~setup ~hold () =
  { launch; capture; data_edge; setup_state = setup; hold_state = hold }

let compare a b =
  let c = String.compare a.launch b.launch in
  if c <> 0 then c
  else
    let c = String.compare a.capture b.capture in
    if c <> 0 then c
    else
      let c = Stdlib.compare a.data_edge b.data_edge in
      if c <> 0 then c
      else
        let c = Cs.compare a.setup_state b.setup_state in
        if c <> 0 then c else Cs.compare a.hold_state b.hold_state

let equal a b = compare a b = 0

let normalize l = List.sort_uniq compare l

let states_of l =
  List.sort_uniq Cs.compare (List.map (fun r -> r.setup_state) l)

let rename f r = { r with launch = f r.launch; capture = f r.capture }

let to_string r =
  let edge =
    match r.data_edge with
    | Mm_sdc.Mode.Any_edge -> ""
    | Mm_sdc.Mode.Rise_edge -> "(r)"
    | Mm_sdc.Mode.Fall_edge -> "(f)"
  in
  Printf.sprintf "%s->%s%s:%s/%s" r.launch r.capture edge
    (Cs.to_string r.setup_state)
    (Cs.to_string r.hold_state)

let set_to_string l =
  (* Strongest state first, matching the paper's "FP, V" ordering. *)
  let by_rank a b = Int.compare (Cs.rank b) (Cs.rank a) in
  String.concat ", " (List.map Cs.to_string (List.sort by_rank (states_of l)))
