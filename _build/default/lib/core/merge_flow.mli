(** End-to-end mode-merging flow.

    mergeability analysis -> greedy clique cover -> per clique:
    preliminary merge, refinement, equivalence check. Produces the
    reduced mode set plus the full per-group evidence, and the summary
    numbers reported in the paper's Table 5. *)

type group = {
  grp_members : string list;     (** individual mode names *)
  grp_prelim : Prelim.t;
  grp_refine : Refine.t option;  (** None for singleton groups *)
  grp_equiv : Equiv.report option;
  grp_mode : Mm_sdc.Mode.t;      (** the mode to use downstream *)
}

type result = {
  groups : group list;
  mergeability : Mergeability.t;
  n_individual : int;
  n_merged : int;
  reduction_percent : float;
  runtime_s : float;
}

val run :
  ?tolerance:Mm_util.Toler.t ->
  ?check_equivalence:bool ->
  Mm_sdc.Mode.t list ->
  result
(** [check_equivalence] (default true) re-runs the comparison on the
    final merged mode of each group as independent validation. *)

val merged_modes : result -> Mm_sdc.Mode.t list

val summary_row : design_name:string -> size_cells:int -> result -> string list
(** Table-5 style row: design, size, #individual, #merged, %reduction,
    merge runtime. *)
