(** Paper-style table rendering of analysis and merge results.

    Formats {!Relation_prop} relation sets like Table 1, the
    {!Compare} pass results like Tables 2-4, the {!Mergeability} graph
    like Figure 2, and {!Merge_flow} summaries like Table 5 — shared by
    the examples, the CLI and the benchmark harness. *)

val relations_table :
  Mm_netlist.Design.t ->
  (Mm_netlist.Design.pin_id * Relation.t list) list ->
  Mm_util.Tab.t
(** Table-1 style: one row per (endpoint, launch, capture) with the
    combined state; endpoints without relations get a "-" row. *)

val pass1_table : Mm_netlist.Design.t -> Compare.pass1_row list -> Mm_util.Tab.t
val pass2_table : Mm_netlist.Design.t -> Compare.pass2_row list -> Mm_util.Tab.t
val pass3_table : Mm_netlist.Design.t -> Compare.pass3_row list -> Mm_util.Tab.t

val mergeability_text : Mergeability.t -> string
(** Figure-2 style: vertices, edges and the clique cover. *)

val flow_table : design:string -> cells:int -> Merge_flow.result -> Mm_util.Tab.t
(** One-design Table-5 style summary. *)

val fixes_text : Mm_netlist.Design.t -> Compare.fix list -> string
(** Added constraints in SDC syntax with provenance comments. *)
