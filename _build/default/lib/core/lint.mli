(** Constraint-quality lint for a resolved mode.

    Mode merging inherits whatever is wrong with the inputs, so teams
    lint constraint sets before merging. These checks cover the classic
    sign-off completeness questions:

    - [unclocked-register]: a register whose clock pin no clock reaches;
    - [unconstrained-input]: an input port with no input delay that is
      neither a clock source nor case-constant;
    - [unconstrained-output]: an output port without an output delay;
    - [unused-clock]: a defined clock that clocks no register;
    - [dead-through]: an exception -through pin that is constant or
      disabled (the exception can never match);
    - [cross-domain-unrelated]: a register clocked by several clocks
      with no clock-group relationship declared. *)

type finding = {
  lint_kind : string;  (** stable kebab-case id, e.g. ["unclocked-register"] *)
  lint_msg : string;
}

val run : Mm_timing.Context.t -> finding list
(** All findings, grouped by kind in the order listed above. *)

val to_string : finding list -> string
