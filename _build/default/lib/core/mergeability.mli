(** Mergeability analysis (paper section 3, Figure 2).

    A mock run of preliminary mode merging decides whether two modes
    can merge: tolerance/value conflicts veto the pair, and so does
    clock blocking — a register clock live in one mode that the merged
    mode's clock refinement would sever. Mergeable pairs form the edges
    of the mergeability graph; maximal sets of mutually mergeable modes
    are found with a greedy clique cover (the paper uses a greedy
    algorithm "as the number of modes is small"). *)

type pair_check = { mergeable : bool; reasons : string list }

val check_pair :
  ?tolerance:Mm_util.Toler.t ->
  ?ctx_cache:(string, Mm_timing.Context.t) Hashtbl.t ->
  Mm_sdc.Mode.t ->
  Mm_sdc.Mode.t ->
  pair_check

type t = {
  mode_names : string array;
  adjacency : bool array array;
  cliques : int list list;
      (** disjoint cover of vertex indices; singletons included *)
  pair_reasons : (int * int, string list) Hashtbl.t;
      (** non-mergeable pair diagnostics *)
}

(** Clique-cover strategy. The paper uses a greedy algorithm "as the
    number of modes is small"; [Exact] computes a minimum clique cover
    by branch and bound (only for <= 20 modes, falling back to greedy
    beyond that) — used by the ablation benches to quantify what
    greediness costs. *)
type strategy = Greedy | Exact

val greedy_cliques : bool array array -> int list list
val exact_cliques : ?limit:int -> bool array array -> int list list
(** Minimum clique cover by branch and bound; falls back to
    {!greedy_cliques} when the vertex count exceeds [limit]
    (default 20). *)

val analyze :
  ?tolerance:Mm_util.Toler.t ->
  ?ctx_cache:(string, Mm_timing.Context.t) Hashtbl.t ->
  ?strategy:strategy ->
  Mm_sdc.Mode.t list ->
  t

val clique_modes : t -> Mm_sdc.Mode.t list -> Mm_sdc.Mode.t list list
(** Map the clique cover back to mode values (same order as given to
    {!analyze}). *)

val edges : t -> (int * int) list
(** Mergeability-graph edges, for Figure-2 style reports. *)
