type group = {
  g_kind : string;
  g_args : string list;
  g_attrs : (string * string) list;
  g_groups : group list;
}

exception Parse_error of { line : int; msg : string }

let error line msg = raise (Parse_error { line; msg })

(* ------------------------------------------------------------------ *)
(* Group-syntax layer                                                  *)

type lstate = { src : string; mutable pos : int; mutable line : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '*'
    ->
    (* block comment *)
    advance st;
    advance st;
    let rec go () =
      match peek st with
      | None -> error st.line "unterminated comment"
      | Some '*' when st.pos + 1 < String.length st.src
                      && st.src.[st.pos + 1] = '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        go ()
    in
    go ();
    skip_ws st
  | Some '/' when st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/'
    ->
    let rec go () =
      match peek st with
      | None | Some '\n' -> ()
      | Some _ ->
        advance st;
        go ()
    in
    go ();
    skip_ws st
  | Some '\\' when st.pos + 1 < String.length st.src
                   && st.src.[st.pos + 1] = '\n' ->
    advance st;
    advance st;
    skip_ws st
  | _ -> ()

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '-' || c = '+'

let read_word st =
  let start = st.pos in
  while (match peek st with Some c when is_word_char c -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then error st.line "expected identifier";
  String.sub st.src start (st.pos - start)

let read_quoted st =
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st.line "unterminated string"
    | Some '"' -> advance st
    | Some '\\' when st.pos + 1 < String.length st.src
                     && st.src.[st.pos + 1] = '\n' ->
      (* line continuation inside strings *)
      advance st;
      advance st;
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

(* Attribute value: everything to the terminating ';' (strings merged). *)
let read_value st =
  let buf = Buffer.create 16 in
  let rec go () =
    skip_ws st;
    match peek st with
    | None -> error st.line "unterminated attribute"
    | Some ';' -> advance st
    | Some '"' ->
      Buffer.add_string buf (read_quoted st);
      go ()
    | Some c when is_word_char c || c = '*' || c = '!' || c = '\'' || c = '('
                  || c = ')' || c = '^' || c = '|' || c = '&' || c = ',' ->
      advance st;
      Buffer.add_char buf c;
      go ()
    | Some c -> error st.line (Printf.sprintf "unexpected %c in value" c)
  in
  go ();
  String.trim (Buffer.contents buf)

let read_args st =
  (* '(' already peeked *)
  advance st;
  let args = ref [] and buf = Buffer.create 16 in
  let flush () =
    let w = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if w <> "" then args := w :: !args
  in
  let rec go () =
    match peek st with
    | None -> error st.line "unterminated ("
    | Some ')' ->
      advance st;
      flush ()
    | Some ',' ->
      advance st;
      flush ();
      go ()
    | Some '"' ->
      Buffer.add_string buf (read_quoted st);
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  List.rev !args

let rec read_group_body st kind args =
  (* '{' consumed *)
  let attrs = ref [] and groups = ref [] in
  let rec go () =
    skip_ws st;
    match peek st with
    | None -> error st.line "unterminated group"
    | Some '}' -> advance st
    | Some _ ->
      let name = read_word st in
      skip_ws st;
      (match peek st with
      | Some ':' ->
        advance st;
        attrs := (name, read_value st) :: !attrs
      | Some '(' ->
        let gargs = read_args st in
        skip_ws st;
        (match peek st with
        | Some '{' ->
          advance st;
          groups := read_group_body st name gargs :: !groups
        | Some ';' ->
          advance st;
          (* complex attribute: keep args joined *)
          attrs := (name, String.concat "," gargs) :: !attrs
        | _ ->
          (* tolerate missing ';' after complex attribute *)
          attrs := (name, String.concat "," gargs) :: !attrs)
      | _ -> error st.line (Printf.sprintf "expected : or ( after %s" name));
      go ()
  in
  go ();
  { g_kind = kind; g_args = args; g_attrs = List.rev !attrs; g_groups = List.rev !groups }

let parse_groups src =
  let st = { src; pos = 0; line = 1 } in
  let groups = ref [] in
  let rec go () =
    skip_ws st;
    match peek st with
    | None -> ()
    | Some _ ->
      let name = read_word st in
      skip_ws st;
      (match peek st with
      | Some '(' ->
        let args = read_args st in
        skip_ws st;
        (match peek st with
        | Some '{' ->
          advance st;
          groups := read_group_body st name args :: !groups
        | _ -> error st.line "expected { after top-level group")
      | _ -> error st.line "expected ( after top-level group name");
      go ()
  in
  go ();
  List.rev !groups

(* ------------------------------------------------------------------ *)
(* Boolean function parser                                             *)

type ftok = F_id of string | F_not | F_xor | F_and | F_or | F_lp | F_rp | F_post

let ftokens s =
  let toks = ref [] in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = '!' then (toks := F_not :: !toks; incr i)
    else if c = '\'' then (toks := F_post :: !toks; incr i)
    else if c = '^' then (toks := F_xor :: !toks; incr i)
    else if c = '*' || c = '&' then (toks := F_and :: !toks; incr i)
    else if c = '+' || c = '|' then (toks := F_or :: !toks; incr i)
    else if c = '(' then (toks := F_lp :: !toks; incr i)
    else if c = ')' then (toks := F_rp :: !toks; incr i)
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char s.[!i] do incr i done;
      toks := F_id (String.sub s start (!i - start)) :: !toks
    end
    else error 0 (Printf.sprintf "function: unexpected character %c" c)
  done;
  List.rev !toks

let parse_function ~names s =
  let toks = ref (ftokens s) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let next () =
    match !toks with
    | [] -> error 0 "function: unexpected end"
    | t :: rest ->
      toks := rest;
      t
  in
  (* precedence: postfix ' / ! > ^ > and (explicit or juxtaposed) > or *)
  let rec expr () =
    let lhs = term () in
    match peek () with
    | Some F_or ->
      ignore (next ());
      Logic.Or [ lhs; expr () ]
    | _ -> lhs
  and term () =
    let lhs = xfact () in
    match peek () with
    | Some F_and ->
      ignore (next ());
      Logic.And [ lhs; term () ]
    | Some (F_id _ | F_not | F_lp) ->
      (* juxtaposition = AND *)
      Logic.And [ lhs; term () ]
    | _ -> lhs
  and xfact () =
    let lhs = factor () in
    match peek () with
    | Some F_xor ->
      ignore (next ());
      Logic.Xor (lhs, xfact ())
    | _ -> lhs
  and factor () =
    match next () with
    | F_not -> Logic.Not (factor ())
    | F_lp ->
      let e = expr () in
      (match next () with
      | F_rp -> postfix e
      | _ -> error 0 "function: expected )")
    | F_id "0" -> postfix (Logic.Const false)
    | F_id "1" -> postfix (Logic.Const true)
    | F_id name -> (
      match names name with
      | Some i -> postfix (Logic.Var i)
      | None -> error 0 (Printf.sprintf "function: unknown pin %s" name))
    | F_xor | F_and | F_or | F_rp | F_post -> error 0 "function: syntax error"
  and postfix e =
    match peek () with
    | Some F_post ->
      ignore (next ());
      postfix (Logic.Not e)
    | _ -> e
  in
  let e = expr () in
  if !toks <> [] then error 0 "function: trailing tokens";
  e

(* ------------------------------------------------------------------ *)
(* Interpretation                                                      *)

type library = { lib_name : string; cells : Lib_cell.t list }

let attr g name = List.assoc_opt name g.g_attrs
let attr_float g name = Option.bind (attr g name) float_of_string_opt

let idents_of expr_str =
  List.filter_map
    (function F_id s when s <> "0" && s <> "1" -> Some s | _ -> None)
    (ftokens expr_str)
  |> List.sort_uniq compare

let interpret_cell cg =
  match cg.g_args with
  | [] -> None
  | cell_name :: _ ->
    let pin_groups = List.filter (fun g -> g.g_kind = "pin") cg.g_groups in
    if pin_groups = [] then None
    else begin
      let ff = List.find_opt (fun g -> g.g_kind = "ff") cg.g_groups in
      let latch = List.find_opt (fun g -> g.g_kind = "latch") cg.g_groups in
      let seq_group = match ff with Some _ -> ff | None -> latch in
      let state_vars =
        match seq_group with Some g -> g.g_args | None -> []
      in
      (* Pin records in declaration order. *)
      let pin_infos =
        List.filter_map
          (fun pg ->
            match pg.g_args with
            | [ name ] ->
              let dir =
                match attr pg "direction" with
                | Some "input" -> Some Lib_cell.Input
                | Some "output" -> Some Lib_cell.Output
                | _ -> None
              in
              Option.map (fun d -> name, d, pg) dir
            | _ -> None)
          pin_groups
      in
      if List.exists (fun (_, _, pg) -> attr pg "three_state" <> None) pin_infos
      then None
      else begin
        let index_of name =
          let rec go i = function
            | [] -> None
            | (n, _, _) :: rest -> if n = name then Some i else go (i + 1) rest
          in
          go 0 pin_infos
        in
        (* Sequential bookkeeping from the ff/latch group. *)
        let clocked_on =
          Option.bind seq_group (fun g ->
              match attr g "clocked_on", attr g "enable" with
              | Some c, _ -> Some c
              | None, Some e -> Some e
              | None, None -> None)
        in
        let next_state =
          Option.bind seq_group (fun g ->
              match attr g "next_state", attr g "data_in" with
              | Some s, _ -> Some s
              | None, Some s -> Some s
              | None, None -> None)
        in
        let clock_pin_name, clock_edge =
          match clocked_on with
          | Some c ->
            let trimmed = String.trim c in
            if String.length trimmed > 0 && trimmed.[0] = '!' then
              ( (match idents_of trimmed with [ p ] -> Some p | _ -> None),
                Lib_cell.Falling )
            else
              ( (match idents_of trimmed with [ p ] -> Some p | _ -> None),
                Lib_cell.Rising )
          | None -> None, Lib_cell.Rising
        in
        let data_pin_names =
          match next_state with Some s -> idents_of s | None -> []
        in
        (* Build the pin list with roles. *)
        let pins =
          List.map
            (fun (name, dir, pg) ->
              let role =
                if Some name = clock_pin_name || attr pg "clock" = Some "true"
                then Lib_cell.Clock_in
                else
                  match attr pg "nextstate_type" with
                  | Some "scan_in" -> Lib_cell.Scan_in
                  | Some "scan_enable" -> Lib_cell.Scan_enable
                  | _ -> Lib_cell.Data
              in
              {
                Lib_cell.pin_name = name;
                dir;
                role;
                cap =
                  (match attr_float pg "capacitance" with
                  | Some c -> c
                  | None -> if dir = Lib_cell.Input then 0.002 else 0.);
              })
            pin_infos
        in
        (* Output functions; outputs equal to a state variable are
           sequential outputs. *)
        let functions = ref [] and q_pins = ref [] in
        List.iteri
          (fun idx (name, dir, pg) ->
            ignore name;
            if dir = Lib_cell.Output then begin
              match attr pg "function" with
              | Some fsrc ->
                let ids = idents_of fsrc in
                if List.exists (fun i -> List.mem i state_vars) ids then
                  q_pins := idx :: !q_pins
                else begin
                  let f =
                    parse_function
                      ~names:(fun n -> index_of n)
                      fsrc
                  in
                  functions := (idx, f) :: !functions
                end
              | None ->
                if seq_group <> None then q_pins := idx :: !q_pins
            end)
          pin_infos;
        (* Timing attributes (linear model). *)
        let timing_groups =
          List.concat_map
            (fun (_, _, pg) ->
              List.filter (fun g -> g.g_kind = "timing") pg.g_groups)
            pin_infos
        in
        let pick_attr name dflt =
          match
            List.filter_map (fun g -> attr_float g name) timing_groups
          with
          | [] -> dflt
          | vs -> List.fold_left Float.max 0. vs
        in
        let intrinsic =
          Float.max (pick_attr "intrinsic_rise" 0.05) (pick_attr "intrinsic_fall" 0.05)
        in
        let drive_res =
          Float.max (pick_attr "rise_resistance" 1.0) (pick_attr "fall_resistance" 1.0)
        in
        let seq =
          match seq_group, clock_pin_name with
          | Some sg, Some cp_name -> (
            match index_of cp_name with
            | Some clock_pin ->
              let data_pins = List.filter_map index_of data_pin_names in
              Some
                {
                  Lib_cell.clock_pin;
                  clock_edge;
                  data_pins;
                  q_pins = List.rev !q_pins;
                  setup = Option.value ~default:0.08 (attr_float sg "mm_setup");
                  hold = Option.value ~default:0.02 (attr_float sg "mm_hold");
                  clk_to_q = Option.value ~default:0.12 (attr_float sg "mm_clk_to_q");
                  is_latch = sg.g_kind = "latch";
                }
            | None -> None)
          | _ -> None
        in
        Some
          (Lib_cell.make
             ~functions:(List.rev !functions)
             ?seq ~intrinsic ~drive_res cell_name pins)
      end
    end

let load src =
  match parse_groups src with
  | [] -> error 0 "empty liberty source"
  | lib :: _ when lib.g_kind = "library" ->
    let lib_name = match lib.g_args with n :: _ -> n | [] -> "unnamed" in
    let cells =
      List.filter_map
        (fun g -> if g.g_kind = "cell" then interpret_cell g else None)
        lib.g_groups
    in
    { lib_name; cells }
  | g -> error 0 (Printf.sprintf "expected a library group, got %s" (List.hd g).g_kind)

let load_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      load (really_input_string ic n))

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let rec logic_to_liberty pins f =
  let name i = pins.(i).Lib_cell.pin_name in
  match f with
  | Logic.Const b -> if b then "1" else "0"
  | Logic.Var i -> name i
  | Logic.Not f -> Printf.sprintf "!(%s)" (logic_to_liberty pins f)
  | Logic.And fs ->
    "(" ^ String.concat " * " (List.map (logic_to_liberty pins) fs) ^ ")"
  | Logic.Or fs ->
    "(" ^ String.concat " + " (List.map (logic_to_liberty pins) fs) ^ ")"
  | Logic.Xor (a, b) ->
    Printf.sprintf "(%s ^ %s)" (logic_to_liberty pins a) (logic_to_liberty pins b)
  | Logic.Mux (s, a0, a1) ->
    (* No Liberty mux operator: expand to sum of products. *)
    let s' = logic_to_liberty pins s in
    Printf.sprintf "((!(%s) * %s) + (%s * %s))" s'
      (logic_to_liberty pins a0)
      s'
      (logic_to_liberty pins a1)

let to_liberty name cells =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "library (%s) {\n  time_unit : \"1ns\";\n" name;
  List.iter
    (fun (c : Lib_cell.t) ->
      out "  cell (%s) {\n" c.Lib_cell.cell_name;
      (match c.Lib_cell.seq with
      | Some seq ->
        let cp = c.Lib_cell.pins.(seq.Lib_cell.clock_pin).Lib_cell.pin_name in
        let clocked =
          match seq.Lib_cell.clock_edge with
          | Lib_cell.Rising -> cp
          | Lib_cell.Falling -> "!" ^ cp
        in
        let next =
          match seq.Lib_cell.data_pins with
          | [ d ] -> c.Lib_cell.pins.(d).Lib_cell.pin_name
          | [ d; si; se ] ->
            (* scan flop: mux of functional and scan data *)
            Printf.sprintf "(%s * !%s) + (%s * %s)"
              c.Lib_cell.pins.(d).Lib_cell.pin_name
              c.Lib_cell.pins.(se).Lib_cell.pin_name
              c.Lib_cell.pins.(si).Lib_cell.pin_name
              c.Lib_cell.pins.(se).Lib_cell.pin_name
          | ds ->
            String.concat " * "
              (List.map (fun d -> c.Lib_cell.pins.(d).Lib_cell.pin_name) ds)
        in
        let kind = if seq.Lib_cell.is_latch then "latch" else "ff" in
        out "    %s (IQ, IQN) {\n" kind;
        if seq.Lib_cell.is_latch then begin
          out "      enable : \"%s\";\n" clocked;
          out "      data_in : \"%s\";\n" next
        end
        else begin
          out "      clocked_on : \"%s\";\n" clocked;
          out "      next_state : \"%s\";\n" next
        end;
        out "      mm_setup : %g;\n" seq.Lib_cell.setup;
        out "      mm_hold : %g;\n" seq.Lib_cell.hold;
        out "      mm_clk_to_q : %g;\n" seq.Lib_cell.clk_to_q;
        out "    }\n"
      | None -> ());
      Array.iteri
        (fun idx p ->
          out "    pin (%s) {\n" p.Lib_cell.pin_name;
          out "      direction : %s;\n"
            (match p.Lib_cell.dir with
            | Lib_cell.Input -> "input"
            | Lib_cell.Output -> "output");
          if p.Lib_cell.dir = Lib_cell.Input then
            out "      capacitance : %g;\n" p.Lib_cell.cap;
          (match p.Lib_cell.role with
          | Lib_cell.Clock_in -> out "      clock : true;\n"
          | Lib_cell.Scan_in -> out "      nextstate_type : scan_in;\n"
          | Lib_cell.Scan_enable -> out "      nextstate_type : scan_enable;\n"
          | Lib_cell.Data | Lib_cell.Select | Lib_cell.Enable
          | Lib_cell.Async_reset -> ());
          (match Lib_cell.function_of_output c idx with
          | Some f ->
            out "      function : \"%s\";\n" (logic_to_liberty c.Lib_cell.pins f);
            out "      timing () {\n";
            out "        intrinsic_rise : %g;\n" c.Lib_cell.intrinsic;
            out "        intrinsic_fall : %g;\n" c.Lib_cell.intrinsic;
            out "        rise_resistance : %g;\n" c.Lib_cell.drive_res;
            out "        fall_resistance : %g;\n" c.Lib_cell.drive_res;
            out "      }\n"
          | None ->
            if p.Lib_cell.dir = Lib_cell.Output then begin
              (match c.Lib_cell.seq with
              | Some seq when List.mem idx seq.Lib_cell.q_pins ->
                let state =
                  (* second and later launched outputs are inverted *)
                  match seq.Lib_cell.q_pins with
                  | q0 :: _ when q0 = idx -> "IQ"
                  | _ -> "IQN"
                in
                out "      function : \"%s\";\n" state;
                out "      timing () {\n";
                out "        intrinsic_rise : %g;\n" c.Lib_cell.intrinsic;
                out "        rise_resistance : %g;\n" c.Lib_cell.drive_res;
                out "      }\n"
              | Some _ | None -> ())
            end);
          out "    }\n")
        c.Lib_cell.pins;
      out "  }\n")
    cells;
  out "}\n";
  Buffer.contents buf

let builtin_liberty () = to_liberty "mm_builtin" Library.all
