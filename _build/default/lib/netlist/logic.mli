(** Combinational cell functions with three-valued evaluation.

    Cell output behaviour is modelled as a boolean expression over the
    cell's input pins (referenced by input index). Three-valued
    ({!tri}) evaluation under a partial assignment drives case-analysis
    constant propagation: an input whose value cannot influence the
    output under the current constants has its timing arc disabled and
    blocks clock propagation (paper sections 3.1.8 and 3.2). *)

type t =
  | Const of bool
  | Var of int  (** input pin index within the owning cell *)
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t
  | Mux of t * t * t
      (** [Mux (sel, a0, a1)]: output follows [a0] when [sel]=0,
          [a1] when [sel]=1. *)

type tri = F | T | X  (** three-valued logic: false, true, unknown *)

val tri_of_bool : bool -> tri
val tri_to_string : tri -> string

val eval : (int -> tri) -> t -> tri
(** [eval env f] evaluates [f] with inputs supplied by [env];
    unknown inputs are [X]. Uses dominant-value shortcuts, e.g.
    [And [F; X] = F] and [Mux] with a known select ignores the
    unselected branch. *)

val support : t -> int list
(** Sorted, deduplicated list of input indices appearing in [f]. *)

val simplify : (int -> tri) -> t -> t
(** [simplify env f] substitutes known inputs and folds constants.
    The result's {!support} is exactly the set of inputs that can
    still influence the output under [env] (for tree-shaped gate
    functions; shared-variable reconvergence inside a single cell
    function may conservatively keep an input). *)

val observable : (int -> tri) -> t -> int -> bool
(** [observable env f i]: can input [i] still influence the output of
    [f] given the constants in [env]? This is the arc-enable predicate
    used by constant propagation. *)

val to_string : t -> string
(** Human-readable form using [i0..iN] for inputs, for debugging and
    the netlist text format. *)

(* Convenience constructors used by the standard cell library. *)
val v : int -> t
val ( &&& ) : t -> t -> t
val ( ||| ) : t -> t -> t
val not_ : t -> t
val and_n : int -> t
val or_n : int -> t
val nand_n : int -> t
val nor_n : int -> t
