type t =
  | Const of bool
  | Var of int
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t
  | Mux of t * t * t

type tri = F | T | X

let tri_of_bool b = if b then T else F
let tri_to_string = function F -> "0" | T -> "1" | X -> "x"

let tri_not = function F -> T | T -> F | X -> X

let tri_and a b =
  match a, b with
  | F, _ | _, F -> F
  | T, T -> T
  | T, X | X, T | X, X -> X

let tri_or a b =
  match a, b with
  | T, _ | _, T -> T
  | F, F -> F
  | F, X | X, F | X, X -> X

let tri_xor a b =
  match a, b with
  | X, _ | _, X -> X
  | T, T | F, F -> F
  | T, F | F, T -> T

let rec eval env = function
  | Const b -> tri_of_bool b
  | Var i -> env i
  | Not f -> tri_not (eval env f)
  | And fs -> List.fold_left (fun acc f -> tri_and acc (eval env f)) T fs
  | Or fs -> List.fold_left (fun acc f -> tri_or acc (eval env f)) F fs
  | Xor (a, b) -> tri_xor (eval env a) (eval env b)
  | Mux (sel, a0, a1) -> (
    match eval env sel with
    | F -> eval env a0
    | T -> eval env a1
    | X ->
      let v0 = eval env a0 and v1 = eval env a1 in
      if v0 = v1 then v0 else X)

let support f =
  let module IS = Set.Make (Int) in
  let rec go acc = function
    | Const _ -> acc
    | Var i -> IS.add i acc
    | Not f -> go acc f
    | And fs | Or fs -> List.fold_left go acc fs
    | Xor (a, b) -> go (go acc a) b
    | Mux (s, a, b) -> go (go (go acc s) a) b
  in
  IS.elements (go IS.empty f)

let rec simplify env = function
  | Const b -> Const b
  | Var i -> ( match env i with F -> Const false | T -> Const true | X -> Var i)
  | Not f -> (
    match simplify env f with
    | Const b -> Const (not b)
    | Not g -> g
    | g -> Not g)
  | And fs ->
    let fs = List.map (simplify env) fs in
    if List.exists (function Const false -> true | _ -> false) fs then
      Const false
    else begin
      match List.filter (function Const true -> false | _ -> true) fs with
      | [] -> Const true
      | [ f ] -> f
      | fs -> And fs
    end
  | Or fs ->
    let fs = List.map (simplify env) fs in
    if List.exists (function Const true -> true | _ -> false) fs then
      Const true
    else begin
      match List.filter (function Const false -> false | _ -> true) fs with
      | [] -> Const false
      | [ f ] -> f
      | fs -> Or fs
    end
  | Xor (a, b) -> (
    match simplify env a, simplify env b with
    | Const a, Const b -> Const (a <> b)
    | Const false, g | g, Const false -> g
    | Const true, g | g, Const true -> (
      match g with Not h -> h | h -> Not h)
    | a, b -> Xor (a, b))
  | Mux (sel, a0, a1) -> (
    match simplify env sel with
    | Const false -> simplify env a0
    | Const true -> simplify env a1
    | sel ->
      let a0 = simplify env a0 and a1 = simplify env a1 in
      if a0 = a1 then a0 else Mux (sel, a0, a1))

let observable env f i =
  env i = X && List.mem i (support (simplify env f))

let rec to_string = function
  | Const b -> if b then "1" else "0"
  | Var i -> Printf.sprintf "i%d" i
  | Not f -> Printf.sprintf "!%s" (paren f)
  | And fs -> String.concat " & " (List.map paren fs)
  | Or fs -> String.concat " | " (List.map paren fs)
  | Xor (a, b) -> Printf.sprintf "%s ^ %s" (paren a) (paren b)
  | Mux (s, a0, a1) ->
    Printf.sprintf "mux(%s, %s, %s)" (to_string s) (to_string a0)
      (to_string a1)

and paren f =
  match f with
  | Const _ | Var _ | Not _ -> to_string f
  | And _ | Or _ | Xor _ | Mux _ -> Printf.sprintf "(%s)" (to_string f)

let v i = Var i
let ( &&& ) a b = And [ a; b ]
let ( ||| ) a b = Or [ a; b ]
let not_ f = Not f
let and_n n = And (List.init n v)
let or_n n = Or (List.init n v)
let nand_n n = Not (and_n n)
let nor_n n = Not (or_n n)
