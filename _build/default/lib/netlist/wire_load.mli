(** Wire-load models.

    The paper's STA "delay calculations ... were performed using wire
    load model approach" (section 4). A wire-load model estimates a
    net's parasitic capacitance and resistance from its fanout count;
    the net delay seen by each sink is the Elmore-style lumped product
    of driver resistance and total load plus the wire RC. *)

type t = {
  wlm_name : string;
  cap_per_fanout : float;   (** pF added to the net per sink pin *)
  res_per_fanout : float;   (** kOhm-equivalent, folded into ns/pF *)
  slope : float;            (** extrapolation slope beyond the table *)
  table : (int * float) list;
      (** explicit fanout -> wire cap entries; linear interpolation,
          slope-based extrapolation past the last entry *)
}

val default : t
(** A small-geometry default model. *)

val conservative : t
(** A pessimistic model for the synthetic "large die" workloads. *)

val wire_cap : t -> int -> float
(** [wire_cap t fanout] in pF. *)

val wire_res : t -> int -> float
(** [wire_res t fanout] in ns/pF. *)

val net_delay : t -> fanout:int -> pin_caps:float -> float
(** Estimated net propagation delay in ns given total sink pin
    capacitance [pin_caps]. *)
