exception Error of { line : int; msg : string }

let error line msg = raise (Error { line; msg })

(* ------------------------------------------------------------------ *)
(* Tokeniser                                                           *)

type tok =
  | Id of string
  | Punct of char  (** one of ( ) , ; . = *)
  | Const of bool  (** 1'b0 / 1'b1 *)

type ptok = { tok : tok; tline : int }

let is_id_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '$' || c = '/'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push tok = toks := { tok; tline = !line } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i + 1 >= n then error !line "unterminated comment"
        else if src.[!i] = '*' && src.[!i + 1] = '/' then begin
          i := !i + 2;
          fin := true
        end
        else begin
          if src.[!i] = '\n' then incr line;
          incr i
        end
      done
    end
    else if c = '(' || c = ')' || c = ',' || c = ';' || c = '.' || c = '=' then begin
      push (Punct c);
      incr i
    end
    else if c = '\\' then begin
      (* escaped identifier: up to whitespace *)
      incr i;
      let start = !i in
      while !i < n && src.[!i] <> ' ' && src.[!i] <> '\t' && src.[!i] <> '\n' do
        incr i
      done;
      push (Id (String.sub src start (!i - start)))
    end
    else if c >= '0' && c <= '9' then begin
      (* sized constant like 1'b0 or a plain number *)
      let start = !i in
      while
        !i < n
        && (is_id_char src.[!i] || src.[!i] = '\'')
      do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      match word with
      | "1'b0" | "1'h0" | "1'd0" -> push (Const false)
      | "1'b1" | "1'h1" | "1'd1" -> push (Const true)
      | _ -> push (Id word)
    end
    else if is_id_char c then begin
      let start = !i in
      while !i < n && is_id_char src.[!i] do
        incr i
      done;
      push (Id (String.sub src start (!i - start)))
    end
    else error !line (Printf.sprintf "unexpected character %c" c)
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Parser: split into modules, then statements                         *)

type connection = C_net of string | C_const of bool | C_open

type stmt =
  | S_ports of string list  (** input/output handled by keyword *)
  | S_decl of string * string list  (** keyword, names *)
  | S_assign of string * string
  | S_inst of string * string * (string option * connection) list
      (** cell, instance, (formal, actual); formal None = positional *)

type vmodule = {
  m_name : string;
  m_stmts : stmt list;
  m_line : int;
}

let split_statements toks =
  (* statements are ';'-terminated within a module *)
  let rec modules acc = function
    | [] -> List.rev acc
    | { tok = Id "module"; tline } :: rest ->
      let name, rest =
        match rest with
        | { tok = Id n; _ } :: r -> n, r
        | t :: _ -> error t.tline "expected module name"
        | [] -> error tline "expected module name"
      in
      (* header port list up to ';' is one statement *)
      let rec collect_stmts stmts cur = function
        | [] -> error tline "missing endmodule"
        | { tok = Id "endmodule"; _ } :: r ->
          if cur <> [] then error tline "statement missing ';'";
          List.rev stmts, r
        | { tok = Punct ';'; _ } :: r ->
          collect_stmts (List.rev cur :: stmts) [] r
        | t :: r -> collect_stmts stmts (t :: cur) r
      in
      let stmts, rest = collect_stmts [] [] rest in
      modules ({ m_name = name; m_stmts = List.map parse_stmt stmts; m_line = tline } :: acc) rest
    | t :: _ -> error t.tline "expected 'module'"
  and parse_stmt toks =
    match toks with
    | [] -> S_decl ("", [])
    | { tok = Punct '('; _ } :: _ ->
      (* module header port list *)
      S_ports (idents toks)
    | { tok = Id ("input" | "output" | "wire" as kw); _ } :: rest ->
      S_decl (kw, idents rest)
    | { tok = Id "assign"; tline } :: rest -> (
      match rest with
      | [ { tok = Id lhs; _ }; { tok = Punct '='; _ }; { tok = Id rhs; _ } ] ->
        S_assign (lhs, rhs)
      | _ -> error tline "unsupported assign form")
    | { tok = Id "inout"; tline } :: _ -> error tline "inout ports not supported"
    | { tok = Id cell; tline } :: { tok = Id inst; _ } :: { tok = Punct '('; _ } :: rest
      ->
      S_inst (cell, inst, connections tline rest)
    | t :: _ -> error t.tline "unsupported statement"
  and idents toks =
    List.filter_map
      (fun t -> match t.tok with Id s -> Some s | Punct _ | Const _ -> None)
      toks
  and connections line toks =
    (* ".f(a), .g(), b, 1'b0 ... )" *)
    let rec go acc = function
      | [] -> error line "unterminated connection list"
      | [ { tok = Punct ')'; _ } ] -> List.rev acc
      | { tok = Punct ','; _ } :: rest -> go acc rest
      | { tok = Punct '.'; _ } :: { tok = Id formal; _ } :: { tok = Punct '('; _ }
        :: rest -> (
        match rest with
        | { tok = Punct ')'; _ } :: rest -> go ((Some formal, C_open) :: acc) rest
        | { tok = Id net; _ } :: { tok = Punct ')'; _ } :: rest ->
          go ((Some formal, C_net net) :: acc) rest
        | { tok = Const b; _ } :: { tok = Punct ')'; _ } :: rest ->
          go ((Some formal, C_const b) :: acc) rest
        | _ -> error line "malformed named connection")
      | { tok = Id net; _ } :: rest -> go ((None, C_net net) :: acc) rest
      | { tok = Const b; _ } :: rest -> go ((None, C_const b) :: acc) rest
      | t :: _ -> error t.tline "malformed connection list"
    in
    go [] toks
  in
  modules [] toks

(* ------------------------------------------------------------------ *)
(* Elaboration                                                         *)

let read ?(lib = Library.find) ?top src =
  let modules = split_statements (tokenize src) in
  let m =
    match top with
    | Some name -> (
      match List.find_opt (fun m -> m.m_name = name) modules with
      | Some m -> m
      | None -> error 1 (Printf.sprintf "no module named %s" name))
    | None -> (
      match List.rev modules with
      | m :: _ -> m
      | [] -> error 1 "no module found")
  in
  let d = Design.create m.m_name in
  (* Pass 1: ports. *)
  let inputs = Hashtbl.create 16 and outputs = Hashtbl.create 16 in
  List.iter
    (function
      | S_decl ("input", names) ->
        List.iter (fun n -> Hashtbl.replace inputs n ()) names
      | S_decl ("output", names) ->
        List.iter (fun n -> Hashtbl.replace outputs n ()) names
      | S_ports _ | S_decl _ | S_assign _ | S_inst _ -> ())
    m.m_stmts;
  let header_ports =
    List.concat_map (function S_ports ps -> ps | _ -> []) m.m_stmts
  in
  let declared =
    if header_ports <> [] then header_ports
    else
      Hashtbl.fold (fun k () acc -> k :: acc) inputs []
      @ Hashtbl.fold (fun k () acc -> k :: acc) outputs []
      |> List.sort compare
  in
  List.iter
    (fun p ->
      if Hashtbl.mem inputs p then ignore (Design.add_port d p Design.In)
      else if Hashtbl.mem outputs p then ignore (Design.add_port d p Design.Out)
      else error m.m_line (Printf.sprintf "port %s has no direction" p))
    declared;
  (* Helpers to attach by net name: nets are named as in the source;
     a port's net carries the port name. *)
  let net_of name = Design.get_net d name in
  let connect_port_nets () =
    List.iter
      (fun p ->
        match Design.find_port d p with
        | Some port -> Design.attach d (net_of p) (Design.port_pin d port)
        | None -> ())
      declared
  in
  connect_port_nets ();
  (* Tie cells for constants, shared per polarity. *)
  let tie_count = ref 0 in
  let tie_net b =
    incr tie_count;
    let name = Printf.sprintf "__tie%d" !tie_count in
    let cell = if b then Library.tiehi else Library.tielo in
    let inst = Design.add_inst d name cell in
    let n = net_of (name ^ "_n") in
    Design.attach d n (Design.inst_pin d inst 0);
    n
  in
  (* Pass 2: instances and assigns. *)
  let assign_count = ref 0 in
  List.iter
    (function
      | S_ports _ | S_decl _ -> ()
      | S_assign (lhs, rhs) ->
        incr assign_count;
        let name = Printf.sprintf "__assign%d" !assign_count in
        let inst = Design.add_inst d name Library.buf in
        Design.attach d (net_of rhs) (Design.inst_pin_by_name d inst "A");
        Design.attach d (net_of lhs) (Design.inst_pin_by_name d inst "Z")
      | S_inst (cell_name, inst_name, conns) -> (
        match lib cell_name with
        | None ->
          error m.m_line
            (Printf.sprintf
               "unknown cell %s (hierarchical designs must be flattened)"
               cell_name)
        | Some cell ->
          let inst = Design.add_inst d inst_name cell in
          List.iteri
            (fun pos (formal, actual) ->
              let pin_idx =
                match formal with
                | Some f -> (
                  match Lib_cell.pin_index cell f with
                  | idx -> idx
                  | exception Not_found ->
                    error m.m_line
                      (Printf.sprintf "cell %s has no pin %s" cell_name f))
                | None ->
                  if pos >= Array.length cell.Lib_cell.pins then
                    error m.m_line
                      (Printf.sprintf "too many connections on %s" inst_name)
                  else pos
              in
              match actual with
              | C_open -> ()
              | C_net net -> Design.attach d (net_of net) (Design.inst_pin d inst pin_idx)
              | C_const b -> Design.attach d (tie_net b) (Design.inst_pin d inst pin_idx))
            conns))
    m.m_stmts;
  d

let read_file ?lib ?top path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      read ?lib ?top (really_input_string ic n))

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)

let write d =
  let buf = Buffer.create 4096 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let ports = ref [] in
  Design.iter_ports d (fun p -> ports := Design.port_name d p :: !ports);
  let ports = List.rev !ports in
  out "module %s (%s);\n" (Design.design_name d) (String.concat ", " ports);
  Design.iter_ports d (fun p ->
      out "  %s %s;\n"
        (match Design.port_dir d p with Design.In -> "input" | Design.Out -> "output")
        (Design.port_name d p));
  (* In Verilog a port and its net share the port's name: nets touching
     a port pin are emitted under that port's name, everything else
     under its own name (declared as a wire). *)
  let vname = Hashtbl.create 64 in
  Design.iter_nets d (fun n ->
      let pins =
        (match Design.net_driver d n with Some p -> [ p ] | None -> [])
        @ Design.net_sinks d n
      in
      let port_pin =
        List.find_opt
          (fun p ->
            match Design.pin_owner d p with
            | Design.Port_pin _ -> true
            | Design.Inst_pin _ -> false)
          pins
      in
      match port_pin with
      | Some p -> Hashtbl.replace vname n (Design.pin_name d p)
      | None -> Hashtbl.replace vname n (Design.net_name d n));
  Design.iter_nets d (fun n ->
      let name = Hashtbl.find vname n in
      if Design.find_port d name = None then out "  wire %s;\n" name);
  (* A net touching several ports keeps the first port's name; the
     others are reconnected with assigns. *)
  Design.iter_nets d (fun n ->
      let name = Hashtbl.find vname n in
      List.iter
        (fun p ->
          match Design.pin_owner d p with
          | Design.Port_pin _ when Design.pin_name d p <> name ->
            out "  assign %s = %s;\n" (Design.pin_name d p) name
          | Design.Port_pin _ | Design.Inst_pin _ -> ())
        (Design.net_sinks d n));
  Design.iter_insts d (fun i ->
      let cell = Design.inst_cell d i in
      let conns =
        Array.to_list
          (Array.mapi
             (fun idx pin ->
               let pid = Design.inst_pin d i idx in
               match Design.pin_net d pid with
               | Some net ->
                 Some
                   (Printf.sprintf ".%s(%s)" pin.Lib_cell.pin_name
                      (Hashtbl.find vname net))
               | None -> None)
             cell.Lib_cell.pins)
        |> List.filter_map Fun.id
      in
      out "  %s %s (%s);\n" cell.Lib_cell.cell_name (Design.inst_name d i)
        (String.concat ", " conns));
  out "endmodule\n";
  Buffer.contents buf

let write_file path d =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (write d))
