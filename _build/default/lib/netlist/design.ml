module Vec = Mm_util.Vec

type pin_id = int
type inst_id = int
type net_id = int
type port_id = int

type port_dir = In | Out
type pin_owner = Port_pin of port_id | Inst_pin of inst_id * int

type pin = { owner : pin_owner; mutable net : int (* -1 when unconnected *) }
type port = { pt_name : string; pt_dir : port_dir; pt_pin : pin_id }
type inst = { in_name : string; in_cell : Lib_cell.t; in_pins : pin_id array }

type net = {
  nt_name : string;
  mutable nt_driver : int; (* pin id, -1 when none *)
  nt_sinks : pin_id Vec.t;
}

type t = {
  d_name : string;
  pins : pin Vec.t;
  ports : port Vec.t;
  insts : inst Vec.t;
  nets : net Vec.t;
  port_by_name : (string, port_id) Hashtbl.t;
  inst_by_name : (string, inst_id) Hashtbl.t;
  net_by_name : (string, net_id) Hashtbl.t;
}

let create d_name =
  {
    d_name;
    pins = Vec.create ();
    ports = Vec.create ();
    insts = Vec.create ();
    nets = Vec.create ();
    port_by_name = Hashtbl.create 64;
    inst_by_name = Hashtbl.create 64;
    net_by_name = Hashtbl.create 64;
  }

let design_name t = t.d_name

let add_port t name dir =
  if Hashtbl.mem t.port_by_name name then
    invalid_arg (Printf.sprintf "Design.add_port: duplicate port %s" name);
  let port_id = Vec.length t.ports in
  let pin_id = Vec.push t.pins { owner = Port_pin port_id; net = -1 } in
  let id = Vec.push t.ports { pt_name = name; pt_dir = dir; pt_pin = pin_id } in
  Hashtbl.add t.port_by_name name id;
  id

let add_inst t name cell =
  if Hashtbl.mem t.inst_by_name name then
    invalid_arg (Printf.sprintf "Design.add_inst: duplicate instance %s" name);
  let inst_id = Vec.length t.insts in
  let n = Array.length cell.Lib_cell.pins in
  let in_pins =
    Array.init n (fun i ->
        Vec.push t.pins { owner = Inst_pin (inst_id, i); net = -1 })
  in
  let id = Vec.push t.insts { in_name = name; in_cell = cell; in_pins } in
  Hashtbl.add t.inst_by_name name id;
  id

let get_net t name =
  match Hashtbl.find_opt t.net_by_name name with
  | Some id -> id
  | None ->
    let id =
      Vec.push t.nets { nt_name = name; nt_driver = -1; nt_sinks = Vec.create () }
    in
    Hashtbl.add t.net_by_name name id;
    id

let pin_is_driver t pin_id =
  let p = Vec.get t.pins pin_id in
  match p.owner with
  | Port_pin port_id -> (Vec.get t.ports port_id).pt_dir = In
  | Inst_pin (inst_id, i) ->
    let inst = Vec.get t.insts inst_id in
    inst.in_cell.Lib_cell.pins.(i).Lib_cell.dir = Lib_cell.Output

let pin_name t pin_id =
  let p = Vec.get t.pins pin_id in
  match p.owner with
  | Port_pin port_id -> (Vec.get t.ports port_id).pt_name
  | Inst_pin (inst_id, i) ->
    let inst = Vec.get t.insts inst_id in
    inst.in_name ^ "/" ^ inst.in_cell.Lib_cell.pins.(i).Lib_cell.pin_name

let attach t net_id pin_id =
  let p = Vec.get t.pins pin_id in
  if p.net >= 0 then
    invalid_arg
      (Printf.sprintf "Design.attach: pin %s already connected"
         (pin_name t pin_id));
  let net = Vec.get t.nets net_id in
  if pin_is_driver t pin_id then begin
    if net.nt_driver >= 0 then
      invalid_arg
        (Printf.sprintf "Design.attach: net %s already driven by %s"
           net.nt_name
           (pin_name t net.nt_driver));
    net.nt_driver <- pin_id
  end
  else ignore (Vec.push net.nt_sinks pin_id);
  p.net <- net_id

let find_port t name = Hashtbl.find_opt t.port_by_name name
let find_inst t name = Hashtbl.find_opt t.inst_by_name name
let find_net t name = Hashtbl.find_opt t.net_by_name name

let pin_of_name t name =
  match String.index_opt name '/' with
  | None -> (
    match find_port t name with
    | Some port_id -> Some (Vec.get t.ports port_id).pt_pin
    | None -> None)
  | Some i -> (
    let inst_name = String.sub name 0 i in
    let pin_name = String.sub name (i + 1) (String.length name - i - 1) in
    match find_inst t inst_name with
    | None -> None
    | Some inst_id -> (
      let inst = Vec.get t.insts inst_id in
      match Lib_cell.pin_index inst.in_cell pin_name with
      | idx -> Some inst.in_pins.(idx)
      | exception Not_found -> None))

let pin_of_name_exn t name =
  match pin_of_name t name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Design: no pin named %s" name)

let wire t net_name pin_names =
  let net = get_net t net_name in
  List.iter (fun pn -> attach t net (pin_of_name_exn t pn)) pin_names

let port_name t id = (Vec.get t.ports id).pt_name
let port_dir t id = (Vec.get t.ports id).pt_dir
let port_pin t id = (Vec.get t.ports id).pt_pin

let inst_name t id = (Vec.get t.insts id).in_name
let inst_cell t id = (Vec.get t.insts id).in_cell
let inst_pin t id i = (Vec.get t.insts id).in_pins.(i)

let inst_pin_by_name t id name =
  let inst = Vec.get t.insts id in
  inst.in_pins.(Lib_cell.pin_index inst.in_cell name)

let inst_pins t id = Array.copy (Vec.get t.insts id).in_pins

let net_name t id = (Vec.get t.nets id).nt_name

let net_driver t id =
  let d = (Vec.get t.nets id).nt_driver in
  if d < 0 then None else Some d

let net_sinks t id = Vec.to_list (Vec.get t.nets id).nt_sinks
let net_fanout t id = Vec.length (Vec.get t.nets id).nt_sinks

let pin_owner t pin_id = (Vec.get t.pins pin_id).owner

let pin_net t pin_id =
  let n = (Vec.get t.pins pin_id).net in
  if n < 0 then None else Some n

let pin_cell_pin t pin_id =
  match (Vec.get t.pins pin_id).owner with
  | Port_pin _ -> None
  | Inst_pin (inst_id, i) ->
    Some (Vec.get t.insts inst_id).in_cell.Lib_cell.pins.(i)

let pin_cap t pin_id =
  match pin_cell_pin t pin_id with
  | Some p -> p.Lib_cell.cap
  | None -> 0.001 (* nominal port load *)

let pin_role t pin_id =
  match pin_cell_pin t pin_id with
  | Some p -> Some p.Lib_cell.role
  | None -> None

let n_ports t = Vec.length t.ports
let n_insts t = Vec.length t.insts
let n_nets t = Vec.length t.nets
let n_pins t = Vec.length t.pins

let iter_ports t f =
  for i = 0 to n_ports t - 1 do
    f i
  done

let iter_insts t f =
  for i = 0 to n_insts t - 1 do
    f i
  done

let iter_nets t f =
  for i = 0 to n_nets t - 1 do
    f i
  done

let iter_pins t f =
  for i = 0 to n_pins t - 1 do
    f i
  done

let fanout_pins t pin_id =
  match pin_net t pin_id with
  | None -> []
  | Some net_id ->
    if not (pin_is_driver t pin_id) then []
    else net_sinks t net_id

let registers t =
  let acc = ref [] in
  for i = n_insts t - 1 downto 0 do
    if Lib_cell.is_sequential (inst_cell t i) then acc := i :: !acc
  done;
  !acc

let fold_insts t ~init ~f =
  let acc = ref init in
  iter_insts t (fun i -> acc := f !acc i);
  !acc
