(** Liberty (.lib) subset reader and writer.

    Parses the structural subset of the Liberty format needed to build
    {!Lib_cell} values: [cell] groups with [pin] direction /
    capacitance / [function] attributes, [ff] and [latch] groups
    (clocked_on / next_state / enable), [timing] groups' linear-delay
    attributes ([intrinsic_rise/fall], [rise/fall_resistance]) and
    [clock : true] pin markers. NLDM tables and power data are parsed
    structurally but ignored semantically (the delay model here is the
    linear wire-load one).

    Boolean [function] strings support the Liberty operator set:
    [!a], [a'], [a * b], [a & b], [a + b], [a | b], [a ^ b], implicit
    AND by juxtaposition, parentheses and the constants [0]/[1]. *)

(** A parsed Liberty group tree (generic syntax layer). *)
type group = {
  g_kind : string;          (** e.g. ["library"], ["cell"], ["pin"] *)
  g_args : string list;     (** the parenthesised arguments *)
  g_attrs : (string * string) list;  (** simple and quoted attributes *)
  g_groups : group list;
}

exception Parse_error of { line : int; msg : string }

val parse_groups : string -> group list
(** Syntax layer: the top-level groups of a Liberty source.
    @raise Parse_error *)

val parse_function :
  names:(string -> int option) -> string -> Logic.t
(** Parse a Liberty boolean function over pin names resolved by
    [names]. @raise Parse_error (line 0) on syntax errors or unknown
    pins. *)

type library = {
  lib_name : string;
  cells : Lib_cell.t list;
}

val load : string -> library
(** Interpret a Liberty source into cells. Cells that cannot be
    modelled (no pins, tristate, multi-clock ff banks) are skipped.
    @raise Parse_error on syntax errors. *)

val load_file : string -> library

val to_liberty : string -> Lib_cell.t list -> string
(** Write cells as a Liberty source; [load (to_liberty n cs)]
    reconstructs equivalent cells (round-trip property-tested). *)

val builtin_liberty : unit -> string
(** The built-in {!Library.all} serialised as Liberty text — a
    self-contained example .lib. *)
