type t = {
  ports : int;
  insts : int;
  nets : int;
  pins : int;
  registers : int;
  combinational : int;
  max_fanout : int;
}

let of_design d =
  let registers = List.length (Design.registers d) in
  let max_fanout = ref 0 in
  Design.iter_nets d (fun n -> max_fanout := max !max_fanout (Design.net_fanout d n));
  {
    ports = Design.n_ports d;
    insts = Design.n_insts d;
    nets = Design.n_nets d;
    pins = Design.n_pins d;
    registers;
    combinational = Design.n_insts d - registers;
    max_fanout = !max_fanout;
  }

let to_string s =
  Printf.sprintf
    "ports=%d insts=%d (seq=%d comb=%d) nets=%d pins=%d max_fanout=%d"
    s.ports s.insts s.registers s.combinational s.nets s.pins s.max_fanout

let pp fmt s = Format.pp_print_string fmt (to_string s)
