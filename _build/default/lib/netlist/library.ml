open Lib_cell

let in_cap = 0.002 (* pF *)

let inp ?(role = Data) name = { pin_name = name; dir = Input; role; cap = in_cap }
let outp name = { pin_name = name; dir = Output; role = Data; cap = 0. }

let comb ?(intrinsic = 0.05) ?(drive_res = 1.0) name inputs f =
  let pins = List.map inp inputs @ [ outp "Z" ] in
  let z = List.length inputs in
  make ~functions:[ z, f ] ~intrinsic ~drive_res name pins

let inv = comb ~intrinsic:0.03 "INV" [ "A" ] Logic.(not_ (v 0))
let buf = comb ~intrinsic:0.04 "BUF" [ "A" ] Logic.(v 0)
let and2 = comb "AND2" [ "A"; "B" ] (Logic.and_n 2)
let and3 = comb "AND3" [ "A"; "B"; "C" ] (Logic.and_n 3)
let and4 = comb "AND4" [ "A"; "B"; "C"; "D" ] (Logic.and_n 4)
let nand2 = comb ~intrinsic:0.04 "NAND2" [ "A"; "B" ] (Logic.nand_n 2)
let nand3 = comb ~intrinsic:0.045 "NAND3" [ "A"; "B"; "C" ] (Logic.nand_n 3)
let or2 = comb "OR2" [ "A"; "B" ] (Logic.or_n 2)
let or3 = comb "OR3" [ "A"; "B"; "C" ] (Logic.or_n 3)
let or4 = comb "OR4" [ "A"; "B"; "C"; "D" ] (Logic.or_n 4)
let nor2 = comb ~intrinsic:0.04 "NOR2" [ "A"; "B" ] (Logic.nor_n 2)
let nor3 = comb ~intrinsic:0.045 "NOR3" [ "A"; "B"; "C" ] (Logic.nor_n 3)
let xor2 = comb ~intrinsic:0.07 "XOR2" [ "A"; "B" ] Logic.(Xor (v 0, v 1))
let xnor2 =
  comb ~intrinsic:0.07 "XNOR2" [ "A"; "B" ] Logic.(not_ (Xor (v 0, v 1)))

let mux2 =
  let pins = [ inp "D0"; inp "D1"; inp ~role:Select "S"; outp "Z" ] in
  make
    ~functions:[ 3, Logic.(Mux (v 2, v 0, v 1)) ]
    ~intrinsic:0.06 "MUX2" pins

let aoi21 =
  comb ~intrinsic:0.055 "AOI21" [ "A1"; "A2"; "B" ]
    Logic.(not_ (v 0 &&& v 1 ||| v 2))

let oai21 =
  comb ~intrinsic:0.055 "OAI21" [ "A1"; "A2"; "B" ]
    Logic.(not_ ((v 0 ||| v 1) &&& v 2))

let tiehi =
  make ~functions:[ 0, Logic.Const true ] ~intrinsic:0. "TIEHI" [ outp "Z" ]

let tielo =
  make ~functions:[ 0, Logic.Const false ] ~intrinsic:0. "TIELO" [ outp "Z" ]

let flop name ~edge pins ~clock_pin ~data_pins ~q_pins ~is_latch =
  make
    ~seq:
      {
        clock_pin;
        clock_edge = edge;
        data_pins;
        q_pins;
        setup = 0.08;
        hold = 0.02;
        clk_to_q = 0.12;
        is_latch;
      }
    ~intrinsic:0.12 name pins

let dff =
  flop "DFF" ~edge:Rising
    [ inp "D"; inp ~role:Clock_in "CP"; outp "Q"; outp "QN" ]
    ~clock_pin:1 ~data_pins:[ 0 ] ~q_pins:[ 2; 3 ] ~is_latch:false

let dffn =
  flop "DFFN" ~edge:Falling
    [ inp "D"; inp ~role:Clock_in "CPN"; outp "Q"; outp "QN" ]
    ~clock_pin:1 ~data_pins:[ 0 ] ~q_pins:[ 2; 3 ] ~is_latch:false

let sdff =
  flop "SDFF" ~edge:Rising
    [
      inp "D";
      inp ~role:Scan_in "SI";
      inp ~role:Scan_enable "SE";
      inp ~role:Clock_in "CP";
      outp "Q";
      outp "QN";
    ]
    ~clock_pin:3 ~data_pins:[ 0; 1; 2 ] ~q_pins:[ 4; 5 ] ~is_latch:false

let latch =
  flop "LATCH" ~edge:Rising
    [ inp "D"; inp ~role:Clock_in "EN"; outp "Q" ]
    ~clock_pin:1 ~data_pins:[ 0 ] ~q_pins:[ 2 ] ~is_latch:true

let icg =
  let pins = [ inp ~role:Clock_in "CP"; inp ~role:Enable "EN"; outp "GCLK" ] in
  make ~functions:[ 2, Logic.(v 0 &&& v 1) ] ~intrinsic:0.05 "ICG" pins

let all =
  [
    inv; buf; and2; and3; and4; nand2; nand3; or2; or3; or4; nor2; nor3;
    xor2; xnor2; mux2; aoi21; oai21; tiehi; tielo; dff; dffn; sdff; latch;
    icg;
  ]

let find name =
  List.find_opt (fun c -> String.equal c.cell_name name) all

let find_exn name =
  match find name with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Library.find_exn: unknown cell %s" name)
