(** Library cell descriptions.

    A cell has named pins, per-output combinational functions (over pin
    indices), optional sequential behaviour, and a simple linear delay
    model: [delay = intrinsic + drive_res * load_capacitance]. This is
    deliberately close to the subset of Liberty data that wire-load-model
    STA consumes. *)

type direction = Input | Output

type role =
  | Data          (** ordinary data input/output *)
  | Clock_in      (** register clock pin (CP/EN) *)
  | Scan_enable
  | Scan_in
  | Select        (** mux select *)
  | Enable        (** clock-gate enable *)
  | Async_reset

type pin = {
  pin_name : string;
  dir : direction;
  role : role;
  cap : float;  (** input capacitance in pF; 0. for outputs *)
}

type edge = Rising | Falling

type seq_info = {
  clock_pin : int;        (** pin index of CP/EN *)
  clock_edge : edge;
  data_pins : int list;   (** pins checked against the clock (D, SI, SE) *)
  q_pins : int list;      (** launched outputs *)
  setup : float;
  hold : float;
  clk_to_q : float;
  is_latch : bool;        (** level-sensitive; timed as edge-triggered at
                              the closing edge (documented simplification) *)
}

type t = {
  cell_name : string;
  pins : pin array;
  functions : (int * Logic.t) list;
      (** output pin index -> function; [Logic.Var i] refers to pin
          index [i] of this cell *)
  seq : seq_info option;
  intrinsic : float;   (** base propagation delay, ns *)
  drive_res : float;   (** output resistance, ns/pF *)
}

val make :
  ?functions:(int * Logic.t) list ->
  ?seq:seq_info ->
  ?intrinsic:float ->
  ?drive_res:float ->
  string ->
  pin list ->
  t

val pin_index : t -> string -> int
(** Index of the pin named [s]. @raise Not_found when absent. *)

val find_pin : t -> string -> pin option
val input_indices : t -> int list
val output_indices : t -> int list
val function_of_output : t -> int -> Logic.t option
val is_sequential : t -> bool
val is_combinational : t -> bool

val comb_arcs : t -> (int * int) list
(** All (input pin index, output pin index) pairs where the output's
    function depends on the input. For sequential cells this is empty
    except for clock-gating-style cells whose outputs are combinational. *)
