type t = {
  wlm_name : string;
  cap_per_fanout : float;
  res_per_fanout : float;
  slope : float;
  table : (int * float) list;
}

let default =
  {
    wlm_name = "wlm_default";
    cap_per_fanout = 0.0015;
    res_per_fanout = 0.15;
    slope = 0.0012;
    table = [ 1, 0.002; 2, 0.0035; 4, 0.006; 8, 0.011; 16, 0.02 ];
  }

let conservative =
  {
    wlm_name = "wlm_conservative";
    cap_per_fanout = 0.003;
    res_per_fanout = 0.3;
    slope = 0.0025;
    table = [ 1, 0.004; 2, 0.007; 4, 0.012; 8, 0.022; 16, 0.04 ];
  }

let wire_cap t fanout =
  if fanout <= 0 then 0.
  else
    let rec go = function
      | [] -> 0.
      | [ (f, c) ] ->
        (* extrapolate beyond the last table entry *)
        c +. (float_of_int (fanout - f) *. t.slope)
      | (f1, c1) :: ((f2, c2) :: _ as rest) ->
        if fanout <= f1 then c1
        else if fanout <= f2 then
          let frac = float_of_int (fanout - f1) /. float_of_int (f2 - f1) in
          c1 +. (frac *. (c2 -. c1))
        else go rest
    in
    go t.table

let wire_res t fanout =
  if fanout <= 0 then 0. else t.res_per_fanout *. float_of_int fanout ** 0.5

let net_delay t ~fanout ~pin_caps =
  let cw = wire_cap t fanout in
  wire_res t fanout *. (cw /. 2. +. pin_caps)
