(** The built-in standard-cell library.

    A compact technology library sufficient for the paper's circuits and
    the synthetic workloads: inverters/buffers, 2-4 input gates, 2:1 mux,
    AOI/OAI, tie cells, rising/falling-edge flops, a scan flop, a
    transparent latch and an integrated clock gate (modelled
    combinationally so clocks propagate through it). *)

val inv : Lib_cell.t
val buf : Lib_cell.t
val and2 : Lib_cell.t
val and3 : Lib_cell.t
val and4 : Lib_cell.t
val nand2 : Lib_cell.t
val nand3 : Lib_cell.t
val or2 : Lib_cell.t
val or3 : Lib_cell.t
val or4 : Lib_cell.t
val nor2 : Lib_cell.t
val nor3 : Lib_cell.t
val xor2 : Lib_cell.t
val xnor2 : Lib_cell.t
val mux2 : Lib_cell.t
(** pins D0 D1 S -> Z, [Z = S ? D1 : D0] *)

val aoi21 : Lib_cell.t
val oai21 : Lib_cell.t
val tiehi : Lib_cell.t
val tielo : Lib_cell.t

val dff : Lib_cell.t
(** rising-edge flop: D CP -> Q QN *)

val dffn : Lib_cell.t
(** falling-edge flop: D CPN -> Q QN *)

val sdff : Lib_cell.t
(** scan flop: D SI SE CP -> Q QN *)

val latch : Lib_cell.t
(** transparent-high latch: D EN -> Q *)

val icg : Lib_cell.t
(** integrated clock gate: CP EN -> GCLK = CP & EN (combinational model) *)

val all : Lib_cell.t list
val find : string -> Lib_cell.t option
(** Lookup by cell name, e.g. ["DFF"]. *)

val find_exn : string -> Lib_cell.t
