(** Structural (gate-level) Verilog subset reader and writer.

    Reads a flat netlist module:

    {v
    module top (clk, in1, out1);
      input clk, in1;
      output out1;
      wire n1;
      INV u1 (.A(in1), .Z(n1));
      DFF r1 (.D(n1), .CP(clk), .Q(out1));
    endmodule
    v}

    Supported: named ([.pin(net)]) and positional connections, comma
    port/net declarations, [1'b0]/[1'b1] constants in connections (tie
    cells are inserted), unconnected [.pin()] terms, continuous
    [assign a = b;] (lowered to a buffer), line and block comments.
    Not supported: hierarchy (instances must resolve in the cell
    library), vectors/buses, [inout] ports, behavioural constructs.

    The writer emits named-connection structural Verilog; reading it
    back reconstructs an equivalent design (round-trip tested). *)

exception Error of { line : int; msg : string }

val read :
  ?lib:(string -> Lib_cell.t option) -> ?top:string -> string -> Design.t
(** Parse Verilog source and elaborate the module named [top] (default:
    the last module in the file) against [lib] (default
    {!Library.find}). @raise Error *)

val read_file :
  ?lib:(string -> Lib_cell.t option) -> ?top:string -> string -> Design.t

val write : Design.t -> string
val write_file : string -> Design.t -> unit
