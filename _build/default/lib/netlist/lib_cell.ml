type direction = Input | Output

type role =
  | Data
  | Clock_in
  | Scan_enable
  | Scan_in
  | Select
  | Enable
  | Async_reset

type pin = { pin_name : string; dir : direction; role : role; cap : float }

type edge = Rising | Falling

type seq_info = {
  clock_pin : int;
  clock_edge : edge;
  data_pins : int list;
  q_pins : int list;
  setup : float;
  hold : float;
  clk_to_q : float;
  is_latch : bool;
}

type t = {
  cell_name : string;
  pins : pin array;
  functions : (int * Logic.t) list;
  seq : seq_info option;
  intrinsic : float;
  drive_res : float;
}

let make ?(functions = []) ?seq ?(intrinsic = 0.05) ?(drive_res = 1.0)
    cell_name pins =
  { cell_name; pins = Array.of_list pins; functions; seq; intrinsic; drive_res }

let pin_index t name =
  let rec go i =
    if i >= Array.length t.pins then raise Not_found
    else if String.equal t.pins.(i).pin_name name then i
    else go (i + 1)
  in
  go 0

let find_pin t name =
  match pin_index t name with
  | i -> Some t.pins.(i)
  | exception Not_found -> None

let indices_where p t =
  let acc = ref [] in
  for i = Array.length t.pins - 1 downto 0 do
    if p t.pins.(i) then acc := i :: !acc
  done;
  !acc

let input_indices t = indices_where (fun p -> p.dir = Input) t
let output_indices t = indices_where (fun p -> p.dir = Output) t

let function_of_output t o = List.assoc_opt o t.functions
let is_sequential t = t.seq <> None
let is_combinational t = t.seq = None

let comb_arcs t =
  List.concat_map
    (fun (o, f) -> List.map (fun i -> i, o) (Logic.support f))
    t.functions
