(** Design statistics for reports and benchmark tables. *)

type t = {
  ports : int;
  insts : int;
  nets : int;
  pins : int;
  registers : int;
  combinational : int;
  max_fanout : int;
}

val of_design : Design.t -> t
val to_string : t -> string
val pp : Format.formatter -> t -> unit
