(** Text serialisation of designs.

    A minimal line-oriented structural format, enough to move designs
    between the generator, the CLI and tests:

    {v
    # comment
    design top
    port in clk1
    port out out1
    inst inv1 INV
    net n1 rA/Q inv1/A
    v}

    [net] lines list connected pins in any order; the driver is inferred
    from pin directions. Cell names must exist in {!Library}. *)

val write : out_channel -> Design.t -> unit
val to_string : Design.t -> string

val read : in_channel -> Design.t
(** @raise Failure with a line-numbered message on malformed input. *)

val of_string : string -> Design.t

val read_file : string -> Design.t
val write_file : string -> Design.t -> unit
