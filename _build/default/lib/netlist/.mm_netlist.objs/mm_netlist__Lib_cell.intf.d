lib/netlist/lib_cell.mli: Logic
