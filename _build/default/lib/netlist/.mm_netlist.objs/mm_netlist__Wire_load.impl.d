lib/netlist/wire_load.ml:
