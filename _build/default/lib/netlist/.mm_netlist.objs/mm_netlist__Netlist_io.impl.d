lib/netlist/netlist_io.ml: Buffer Design Fun Lib_cell Library List Printf String
