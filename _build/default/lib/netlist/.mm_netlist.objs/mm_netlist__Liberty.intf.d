lib/netlist/liberty.mli: Lib_cell Logic
