lib/netlist/stats.ml: Design Format List Printf
