lib/netlist/logic.ml: Int List Printf Set String
