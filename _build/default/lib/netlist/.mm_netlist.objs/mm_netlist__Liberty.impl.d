lib/netlist/liberty.ml: Array Buffer Float Fun Lib_cell Library List Logic Option Printf String
