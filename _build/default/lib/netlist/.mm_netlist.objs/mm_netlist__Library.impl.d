lib/netlist/library.ml: Lib_cell List Logic Printf String
