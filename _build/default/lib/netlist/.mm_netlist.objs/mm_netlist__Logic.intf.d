lib/netlist/logic.mli:
