lib/netlist/design.mli: Lib_cell
