lib/netlist/verilog.mli: Design Lib_cell
