lib/netlist/library.mli: Lib_cell
