lib/netlist/netlist_io.mli: Design
