lib/netlist/wire_load.mli:
