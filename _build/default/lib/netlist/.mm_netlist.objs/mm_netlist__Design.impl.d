lib/netlist/design.ml: Array Hashtbl Lib_cell List Mm_util Printf String
