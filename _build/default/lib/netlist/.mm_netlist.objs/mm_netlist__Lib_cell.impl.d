lib/netlist/lib_cell.ml: Array List Logic String
