lib/netlist/verilog.ml: Array Buffer Design Fun Hashtbl Lib_cell Library List Printf String
