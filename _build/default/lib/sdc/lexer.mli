(** Tokeniser for the SDC (Tcl-flavoured) constraint syntax.

    Produces one token-tree list per command. Handles [#] comments,
    backslash line continuation, [;] command separators, double-quoted
    strings, brace-delimited word lists and nested [\[...\]] command
    substitution (used for object queries). *)

type tok =
  | Atom of string
  | Bracket of tok list  (** a [\[...\]] command substitution *)
  | Brace of string list (** a [{...}] word list *)

exception Error of { line : int; msg : string }

val tokenize : string -> tok list list
(** Split the source into commands; each command is its token list.
    @raise Error on unbalanced delimiters. *)

val tok_to_string : tok -> string
(** Round-trip a token back to SDC text (for diagnostics). *)
