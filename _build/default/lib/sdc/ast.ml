type obj_query =
  | Get_ports of string list
  | Get_pins of string list
  | Get_cells of string list
  | Get_clocks of string list
  | Get_nets of string list
  | All_inputs
  | All_outputs
  | All_clocks
  | All_registers of { clock_pins : bool }
  | Name of string

type objects = obj_query list

type minmax = Min | Max | Both

type create_clock = {
  cc_name : string option;
  period : float;
  waveform : (float * float) option;
  add : bool;
  sources : objects;
  comment : string option;
}

type create_generated_clock = {
  gc_name : string option;
  gc_source : objects;
  master_clock : string option;
  divide_by : int;
  multiply_by : int;
  invert : bool;
  gc_add : bool;
  gc_targets : objects;
}

type set_clock_latency = {
  lat_value : float;
  lat_source : bool;
  lat_minmax : minmax;
  lat_objects : objects;
}

type set_clock_uncertainty = {
  unc_value : float;
  unc_setup : bool;
  unc_hold : bool;
  unc_objects : objects;
}

type set_clock_transition = {
  tra_value : float;
  tra_minmax : minmax;
  tra_clocks : objects;
}

type io_delay = {
  io_value : float;
  io_clock : string option;
  io_clock_fall : bool;
  io_minmax : minmax;
  io_add_delay : bool;
  io_ports : objects;
}

type set_case_analysis = { ca_value : bool; ca_objects : objects }

type set_disable_timing = {
  dis_objects : objects;
  dis_from : string option;
  dis_to : string option;
}

type path_spec = {
  ps_from : objects option;
  ps_rise_from : bool;
  ps_fall_from : bool;
  ps_through : objects list;
  ps_to : objects option;
  ps_rise_to : bool;
  ps_fall_to : bool;
  ps_setup : bool;
  ps_hold : bool;
}

let default_path_spec =
  {
    ps_from = None;
    ps_rise_from = false;
    ps_fall_from = false;
    ps_through = [];
    ps_to = None;
    ps_rise_to = false;
    ps_fall_to = false;
    ps_setup = true;
    ps_hold = true;
  }

type set_multicycle_path = {
  mcp_mult : int;
  mcp_start : bool;
  mcp_end : bool;
  mcp_spec : path_spec;
}

type delay_bound = { db_value : float; db_spec : path_spec }

type exclusivity = Physically_exclusive | Logically_exclusive | Asynchronous

type set_clock_groups = {
  cg_name : string option;
  cg_kind : exclusivity;
  cg_groups : objects list;
}

type set_clock_sense = {
  sense_stop : bool;
  sense_clocks : objects option;
  sense_pins : objects;
}

type env_kind = Input_transition | Load | Drive

type set_env = {
  env_kind : env_kind;
  env_value : float;
  env_minmax : minmax;
  env_objects : objects;
}

(** Design-rule limits: [set_max_transition] / [set_max_capacitance]. *)
type drc_kind = Max_transition | Max_capacitance

type set_drc = {
  drc_kind : drc_kind;
  drc_value : float;
  drc_objects : objects;
}

type command =
  | Create_clock of create_clock
  | Create_generated_clock of create_generated_clock
  | Set_clock_latency of set_clock_latency
  | Set_clock_uncertainty of set_clock_uncertainty
  | Set_clock_transition of set_clock_transition
  | Set_propagated_clock of objects
  | Set_input_delay of io_delay
  | Set_output_delay of io_delay
  | Set_case_analysis of set_case_analysis
  | Set_disable_timing of set_disable_timing
  | Set_false_path of path_spec
  | Set_multicycle_path of set_multicycle_path
  | Set_min_delay of delay_bound
  | Set_max_delay of delay_bound
  | Set_clock_groups of set_clock_groups
  | Set_clock_sense of set_clock_sense
  | Set_env of set_env
  | Set_drc of set_drc

let command_name = function
  | Create_clock _ -> "create_clock"
  | Create_generated_clock _ -> "create_generated_clock"
  | Set_clock_latency _ -> "set_clock_latency"
  | Set_clock_uncertainty _ -> "set_clock_uncertainty"
  | Set_clock_transition _ -> "set_clock_transition"
  | Set_propagated_clock _ -> "set_propagated_clock"
  | Set_input_delay _ -> "set_input_delay"
  | Set_output_delay _ -> "set_output_delay"
  | Set_case_analysis _ -> "set_case_analysis"
  | Set_disable_timing _ -> "set_disable_timing"
  | Set_false_path _ -> "set_false_path"
  | Set_multicycle_path _ -> "set_multicycle_path"
  | Set_min_delay _ -> "set_min_delay"
  | Set_max_delay _ -> "set_max_delay"
  | Set_clock_groups _ -> "set_clock_groups"
  | Set_clock_sense _ -> "set_clock_sense"
  | Set_env { env_kind = Input_transition; _ } -> "set_input_transition"
  | Set_env { env_kind = Load; _ } -> "set_load"
  | Set_env { env_kind = Drive; _ } -> "set_drive"
  | Set_drc { drc_kind = Max_transition; _ } -> "set_max_transition"
  | Set_drc { drc_kind = Max_capacitance; _ } -> "set_max_capacitance"

let patterns_of_query = function
  | Get_ports ps | Get_pins ps | Get_cells ps | Get_clocks ps | Get_nets ps ->
    ps
  | All_inputs | All_outputs | All_clocks | All_registers _ -> []
  | Name n -> [ n ]
