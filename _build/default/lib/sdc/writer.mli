(** Pretty-printer from {!Ast.command}s back to SDC text.

    [parse_string (write_commands cs)] yields commands equal to [cs]
    modulo flag ordering; this round-trip is property-tested. *)

val write_query : Ast.obj_query -> string
val write_objects : Ast.objects -> string
val write_command : Ast.command -> string
val write_commands : ?header:string -> Ast.command list -> string
val write_file : string -> ?header:string -> Ast.command list -> unit
