lib/sdc/mode.mli: Ast Format Mm_netlist
