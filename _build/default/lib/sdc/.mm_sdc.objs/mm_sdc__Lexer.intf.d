lib/sdc/lexer.mli:
