lib/sdc/writer.mli: Ast
