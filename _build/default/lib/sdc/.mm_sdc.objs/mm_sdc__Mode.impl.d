lib/sdc/mode.ml: Ast Float Format List Mm_netlist Option Printf String Writer
