lib/sdc/writer.ml: Ast Float Fun List Printf String
