lib/sdc/resolve.ml: Ast Hashtbl List Mm_netlist Mm_util Mode Option Parser Printf String
