lib/sdc/parser.mli: Ast Lexer
