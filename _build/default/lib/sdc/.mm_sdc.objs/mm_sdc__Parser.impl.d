lib/sdc/parser.ml: Ast Char Fun Lexer List Printf String
