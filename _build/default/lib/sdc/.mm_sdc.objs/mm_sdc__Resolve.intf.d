lib/sdc/resolve.mli: Ast Mm_netlist Mode
