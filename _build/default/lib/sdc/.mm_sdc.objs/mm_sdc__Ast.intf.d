lib/sdc/ast.mli:
