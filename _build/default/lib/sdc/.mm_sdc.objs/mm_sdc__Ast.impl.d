lib/sdc/ast.ml:
