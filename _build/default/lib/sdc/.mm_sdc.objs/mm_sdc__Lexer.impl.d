lib/sdc/lexer.ml: Buffer List String
