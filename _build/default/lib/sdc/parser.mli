(** Parser from token trees to {!Ast.command}s. *)

exception Error of string
(** Raised with a message naming the offending command and argument. *)

val parse_command : Lexer.tok list -> Ast.command
(** Parse one command. @raise Error on malformed input, unknown
    command words or unknown flags. *)

val parse_string : string -> Ast.command list
(** Tokenise and parse a whole SDC source.
    @raise Error / {!Lexer.Error}. *)

val parse_file : string -> Ast.command list
