(** Resolution of parsed SDC against a design, producing a {!Mode.t}.

    Commands are processed in file order (clocks must precede
    [get_clocks] references, as in real tools). Unresolvable objects
    yield warnings rather than failures so that partially applicable
    constraint sets can still be analysed. *)

type result = { mode : Mode.t; warnings : string list }

val mode :
  Mm_netlist.Design.t -> name:string -> Ast.command list -> result

val mode_of_string :
  Mm_netlist.Design.t -> name:string -> string -> result
(** Parse then resolve. @raise Parser.Error / Lexer.Error on syntax. *)

val mode_of_file : Mm_netlist.Design.t -> name:string -> string -> result

val mode_exn : Mm_netlist.Design.t -> name:string -> Ast.command list -> Mode.t
(** Like {!mode} but raises [Failure] on any warning — used by tests
    and the paper walkthrough where constraints must resolve fully. *)
