test/test_integration.ml: Alcotest Filename Hashtbl List Mm_core Mm_netlist Mm_sdc Mm_timing Mm_workload Printf QCheck2 QCheck_alcotest Sys
