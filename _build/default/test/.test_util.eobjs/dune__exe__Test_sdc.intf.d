test/test_sdc.mli:
