test/test_netlist.ml: Alcotest Array Format List Mm_netlist Mm_workload Printf QCheck2 QCheck_alcotest Str_probe
