test/test_util.ml: Alcotest Array Fun List Mm_util QCheck2 QCheck_alcotest String
