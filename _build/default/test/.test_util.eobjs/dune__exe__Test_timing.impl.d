test/test_timing.ml: Alcotest Array Float Format Hashtbl List Mm_netlist Mm_sdc Mm_timing Mm_workload Option Printf Str_probe String
