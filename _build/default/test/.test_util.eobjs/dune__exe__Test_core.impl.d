test/test_core.ml: Alcotest Array Buffer Fun List Mm_core Mm_netlist Mm_sdc Mm_timing Mm_util Mm_workload Option Printf QCheck2 QCheck_alcotest Str_probe String
