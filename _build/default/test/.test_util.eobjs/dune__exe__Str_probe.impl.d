test/str_probe.ml: String
