test/test_sdc.ml: Alcotest List Mm_netlist Mm_sdc Mm_workload QCheck2 QCheck_alcotest String
