test/test_workload.ml: Alcotest Array List Mm_core Mm_netlist Mm_sdc Mm_timing Mm_workload Printf Str_probe String
