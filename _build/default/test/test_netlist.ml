(* Unit and property tests for Mm_netlist. *)
module Logic = Mm_netlist.Logic
module Lib_cell = Mm_netlist.Lib_cell
module Library = Mm_netlist.Library
module Wire_load = Mm_netlist.Wire_load
module Design = Mm_netlist.Design
module Netlist_io = Mm_netlist.Netlist_io
module Stats = Mm_netlist.Stats

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let tri : Logic.tri Alcotest.testable =
  Alcotest.testable
    (fun fmt t -> Format.pp_print_string fmt (Logic.tri_to_string t))
    ( = )

(* ------------------------------------------------------------------ *)
(* Logic                                                               *)

let env_of_list l i = match List.assoc_opt i l with Some v -> v | None -> Logic.X

let logic_cases =
  [
    tc "and truth table" (fun () ->
        let f = Logic.and_n 2 in
        check tri "11" Logic.T (Logic.eval (env_of_list [ 0, Logic.T; 1, Logic.T ]) f);
        check tri "10" Logic.F (Logic.eval (env_of_list [ 0, Logic.T; 1, Logic.F ]) f);
        check tri "0x dominant" Logic.F
          (Logic.eval (env_of_list [ 0, Logic.F ]) f);
        check tri "1x unknown" Logic.X (Logic.eval (env_of_list [ 0, Logic.T ]) f));
    tc "or dominant one" (fun () ->
        let f = Logic.or_n 3 in
        check tri "x1x" Logic.T (Logic.eval (env_of_list [ 1, Logic.T ]) f);
        check tri "all f" Logic.F
          (Logic.eval (env_of_list [ 0, Logic.F; 1, Logic.F; 2, Logic.F ]) f));
    tc "xor propagates unknown" (fun () ->
        let f = Logic.(Xor (v 0, v 1)) in
        check tri "1x" Logic.X (Logic.eval (env_of_list [ 0, Logic.T ]) f);
        check tri "10" Logic.T
          (Logic.eval (env_of_list [ 0, Logic.T; 1, Logic.F ]) f));
    tc "mux select known" (fun () ->
        let f = Logic.(Mux (v 2, v 0, v 1)) in
        check tri "sel0 picks a0" Logic.T
          (Logic.eval (env_of_list [ 2, Logic.F; 0, Logic.T ]) f);
        check tri "sel1 picks a1" Logic.F
          (Logic.eval (env_of_list [ 2, Logic.T; 1, Logic.F ]) f));
    tc "mux select unknown but branches agree" (fun () ->
        let f = Logic.(Mux (v 2, v 0, v 1)) in
        check tri "agree" Logic.T
          (Logic.eval (env_of_list [ 0, Logic.T; 1, Logic.T ]) f);
        check tri "disagree" Logic.X
          (Logic.eval (env_of_list [ 0, Logic.T; 1, Logic.F ]) f));
    tc "support sorted and deduped" (fun () ->
        let f = Logic.(Or [ v 3 &&& v 1; v 1 ]) in
        check Alcotest.(list int) "support" [ 1; 3 ] (Logic.support f));
    tc "simplify removes cased mux branch" (fun () ->
        let f = Logic.(Mux (v 2, v 0, v 1)) in
        let s = Logic.simplify (env_of_list [ 2, Logic.T ]) f in
        check Alcotest.(list int) "only selected leg" [ 1 ] (Logic.support s));
    tc "observable tracks mux select" (fun () ->
        let f = Logic.(Mux (v 2, v 0, v 1)) in
        let env = env_of_list [ 2, Logic.T ] in
        check Alcotest.bool "d0 dead" false (Logic.observable env f 0);
        check Alcotest.bool "d1 live" true (Logic.observable env f 1);
        check Alcotest.bool "sel dead (cased)" false (Logic.observable env f 2));
    tc "observable with and-gate constant" (fun () ->
        let f = Logic.and_n 2 in
        check Alcotest.bool "killed by 0" false
          (Logic.observable (env_of_list [ 1, Logic.F ]) f 0);
        check Alcotest.bool "enabled by 1" true
          (Logic.observable (env_of_list [ 1, Logic.T ]) f 0));
    tc "to_string forms" (fun () ->
        check Alcotest.string "and" "i0 & i1" (Logic.to_string (Logic.and_n 2));
        check Alcotest.string "not" "!i0" (Logic.to_string Logic.(not_ (v 0))));
  ]

(* Property: simplify preserves semantics under the same partial
   environment. *)
let logic_gen =
  let open QCheck2.Gen in
  sized_size (0 -- 4)
  @@ fix (fun self n ->
         if n = 0 then
           oneof
             [ map (fun b -> Logic.Const b) bool; map (fun i -> Logic.Var i) (0 -- 3) ]
         else
           oneof
             [
               map (fun f -> Logic.Not f) (self (n - 1));
               map2 (fun a b -> Logic.And [ a; b ]) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Logic.Or [ a; b ]) (self (n / 2)) (self (n / 2));
               map2 (fun a b -> Logic.Xor (a, b)) (self (n / 2)) (self (n / 2));
               map3
                 (fun s a b -> Logic.Mux (s, a, b))
                 (self (n / 3)) (self (n / 3)) (self (n / 3));
             ])

let logic_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"simplify preserves eval" ~count:1000
         QCheck2.Gen.(pair logic_gen (list_size (0 -- 4) (pair (0 -- 3) bool)))
         (fun (f, partial) ->
           let env i =
             match List.assoc_opt i partial with
             | Some b -> Logic.tri_of_bool b
             | None -> Logic.X
           in
           Logic.eval env (Logic.simplify env f) = Logic.eval env f));
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~name:"full assignments never evaluate to X" ~count:1000
         logic_gen
         (fun f ->
           let env i = Logic.tri_of_bool (i mod 2 = 0) in
           Logic.eval env f <> Logic.X));
  ]

(* ------------------------------------------------------------------ *)
(* Lib_cell and Library                                                *)

let cell_cases =
  [
    tc "pin_index finds pins" (fun () ->
        check Alcotest.int "D" 0 (Lib_cell.pin_index Library.dff "D");
        check Alcotest.int "CP" 1 (Lib_cell.pin_index Library.dff "CP");
        Alcotest.check_raises "missing" Not_found (fun () ->
            ignore (Lib_cell.pin_index Library.dff "ZZ")));
    tc "comb_arcs of mux covers all inputs" (fun () ->
        let arcs = Lib_cell.comb_arcs Library.mux2 in
        check Alcotest.int "three arcs" 3 (List.length arcs);
        check Alcotest.bool "to Z" true (List.for_all (fun (_, o) -> o = 3) arcs));
    tc "sequential flags" (fun () ->
        check Alcotest.bool "dff" true (Lib_cell.is_sequential Library.dff);
        check Alcotest.bool "and2" true (Lib_cell.is_combinational Library.and2);
        check Alcotest.bool "icg comb" true (Lib_cell.is_combinational Library.icg));
    tc "dff has no comb arcs" (fun () ->
        check Alcotest.int "none" 0 (List.length (Lib_cell.comb_arcs Library.dff)));
    tc "icg propagates clock combinationally" (fun () ->
        check Alcotest.int "two arcs" 2
          (List.length (Lib_cell.comb_arcs Library.icg)));
    tc "library lookup" (fun () ->
        check Alcotest.bool "found" true (Library.find "SDFF" <> None);
        check Alcotest.bool "missing" true (Library.find "NOPE" = None);
        Alcotest.check_raises "exn"
          (Invalid_argument "Library.find_exn: unknown cell NOPE") (fun () ->
            ignore (Library.find_exn "NOPE")));
    tc "all cells have unique names" (fun () ->
        let names = List.map (fun c -> c.Lib_cell.cell_name) Library.all in
        check Alcotest.int "unique" (List.length names)
          (List.length (List.sort_uniq compare names)));
    tc "scan flop checks D SI SE" (fun () ->
        match Library.sdff.Lib_cell.seq with
        | Some seq ->
          check Alcotest.int "three data pins" 3
            (List.length seq.Lib_cell.data_pins)
        | None -> Alcotest.fail "sdff not sequential");
    tc "tie cells are constant" (fun () ->
        check
          Alcotest.(option bool)
          "tiehi" (Some true)
          (match Lib_cell.function_of_output Library.tiehi 0 with
          | Some (Logic.Const b) -> Some b
          | Some _ | None -> None));
  ]

(* ------------------------------------------------------------------ *)
(* Wire_load                                                           *)

let wlm_cases =
  [
    tc "zero fanout is free" (fun () ->
        check (Alcotest.float 0.) "cap" 0. (Wire_load.wire_cap Wire_load.default 0);
        check (Alcotest.float 0.) "delay" 0.
          (Wire_load.net_delay Wire_load.default ~fanout:0 ~pin_caps:0.));
    tc "cap grows with fanout" (fun () ->
        let w = Wire_load.default in
        let caps = List.map (Wire_load.wire_cap w) [ 1; 2; 4; 8; 16; 32 ] in
        let rec increasing = function
          | a :: (b :: _ as rest) -> a <= b && increasing rest
          | _ -> true
        in
        check Alcotest.bool "monotonic" true (increasing caps));
    tc "interpolates between entries" (fun () ->
        let w = Wire_load.default in
        let c2 = Wire_load.wire_cap w 2 and c4 = Wire_load.wire_cap w 4 in
        let c3 = Wire_load.wire_cap w 3 in
        check Alcotest.bool "between" true (c3 > c2 && c3 < c4));
    tc "extrapolates past table" (fun () ->
        let w = Wire_load.default in
        check Alcotest.bool "beyond" true
          (Wire_load.wire_cap w 100 > Wire_load.wire_cap w 16));
    tc "conservative is heavier" (fun () ->
        check Alcotest.bool "heavier" true
          (Wire_load.wire_cap Wire_load.conservative 4
          > Wire_load.wire_cap Wire_load.default 4));
  ]

(* ------------------------------------------------------------------ *)
(* Design                                                              *)

let small_design () =
  let d = Design.create "t" in
  ignore (Design.add_port d "clk" Design.In);
  ignore (Design.add_port d "in" Design.In);
  ignore (Design.add_port d "out" Design.Out);
  ignore (Design.add_inst d "u1" Library.inv);
  ignore (Design.add_inst d "r1" Library.dff);
  Design.wire d "n_in" [ "in"; "u1/A" ];
  Design.wire d "n_u1" [ "u1/Z"; "r1/D" ];
  Design.wire d "n_clk" [ "clk"; "r1/CP" ];
  Design.wire d "n_out" [ "r1/Q"; "out" ];
  d

let design_cases =
  [
    tc "duplicate names rejected" (fun () ->
        let d = small_design () in
        Alcotest.check_raises "port"
          (Invalid_argument "Design.add_port: duplicate port clk") (fun () ->
            ignore (Design.add_port d "clk" Design.In));
        Alcotest.check_raises "inst"
          (Invalid_argument "Design.add_inst: duplicate instance u1") (fun () ->
            ignore (Design.add_inst d "u1" Library.buf)));
    tc "pin_of_name" (fun () ->
        let d = small_design () in
        check Alcotest.bool "inst pin" true (Design.pin_of_name d "u1/Z" <> None);
        check Alcotest.bool "port pin" true (Design.pin_of_name d "clk" <> None);
        check Alcotest.bool "bad pin" true (Design.pin_of_name d "u1/Q" = None);
        check Alcotest.bool "bad inst" true (Design.pin_of_name d "zz/Q" = None));
    tc "pin_name round trip" (fun () ->
        let d = small_design () in
        let p = Design.pin_of_name_exn d "u1/Z" in
        check Alcotest.string "name" "u1/Z" (Design.pin_name d p));
    tc "driver inference" (fun () ->
        let d = small_design () in
        check Alcotest.bool "output drives" true
          (Design.pin_is_driver d (Design.pin_of_name_exn d "u1/Z"));
        check Alcotest.bool "input port drives" true
          (Design.pin_is_driver d (Design.pin_of_name_exn d "in"));
        check Alcotest.bool "input pin sinks" false
          (Design.pin_is_driver d (Design.pin_of_name_exn d "u1/A"));
        check Alcotest.bool "output port sinks" false
          (Design.pin_is_driver d (Design.pin_of_name_exn d "out")));
    tc "double driver rejected" (fun () ->
        let d = small_design () in
        ignore (Design.add_inst d "u2" Library.buf);
        let n = Design.get_net d "n_u1" in
        Alcotest.check_raises "second driver"
          (Invalid_argument "Design.attach: net n_u1 already driven by u1/Z")
          (fun () -> Design.attach d n (Design.pin_of_name_exn d "u2/Z")));
    tc "double connection rejected" (fun () ->
        let d = small_design () in
        let n = Design.get_net d "other" in
        Alcotest.check_raises "already connected"
          (Invalid_argument "Design.attach: pin u1/A already connected")
          (fun () -> Design.attach d n (Design.pin_of_name_exn d "u1/A")));
    tc "fanout_pins" (fun () ->
        let d = small_design () in
        let q = Design.pin_of_name_exn d "r1/Q" in
        check Alcotest.int "one sink" 1 (List.length (Design.fanout_pins d q));
        let a = Design.pin_of_name_exn d "u1/A" in
        check Alcotest.int "sink has none" 0 (List.length (Design.fanout_pins d a)));
    tc "registers" (fun () ->
        let d = small_design () in
        check Alcotest.int "one reg" 1 (List.length (Design.registers d)));
    tc "counts" (fun () ->
        let d = small_design () in
        check Alcotest.int "ports" 3 (Design.n_ports d);
        check Alcotest.int "insts" 2 (Design.n_insts d);
        check Alcotest.int "nets" 4 (Design.n_nets d));
    tc "pin_role" (fun () ->
        let d = small_design () in
        check Alcotest.bool "clock role" true
          (Design.pin_role d (Design.pin_of_name_exn d "r1/CP")
          = Some Lib_cell.Clock_in);
        check Alcotest.bool "port role" true
          (Design.pin_role d (Design.pin_of_name_exn d "clk") = None));
  ]

(* ------------------------------------------------------------------ *)
(* Netlist_io                                                          *)

let io_cases =
  [
    tc "write/read round trip" (fun () ->
        let d = small_design () in
        let text = Netlist_io.to_string d in
        let d2 = Netlist_io.of_string text in
        check Alcotest.string "stats equal"
          (Stats.to_string (Stats.of_design d))
          (Stats.to_string (Stats.of_design d2));
        let q = Design.pin_of_name_exn d2 "r1/Q" in
        check
          Alcotest.(list string)
          "fanout" [ "out" ]
          (List.map (Design.pin_name d2) (Design.fanout_pins d2 q)));
    tc "generator designs round trip" (fun () ->
        let design, _info =
          Mm_workload.Gen_design.generate
            { Mm_workload.Gen_design.default_params with seed = 77 }
        in
        let d2 = Netlist_io.of_string (Netlist_io.to_string design) in
        check Alcotest.string "stats"
          (Stats.to_string (Stats.of_design design))
          (Stats.to_string (Stats.of_design d2)));
    tc "unknown cell rejected" (fun () ->
        Alcotest.check_raises "fail"
          (Failure "netlist: line 2: unknown cell BOGUS") (fun () ->
            ignore (Netlist_io.of_string "design t\ninst x BOGUS\n")));
    tc "missing design line rejected" (fun () ->
        Alcotest.check_raises "fail"
          (Failure "netlist: line 1: expected 'design <name>' first") (fun () ->
            ignore (Netlist_io.of_string "port in a\n")));
    tc "comments and blank lines ignored" (fun () ->
        let d = Netlist_io.of_string "# hello\ndesign t\n\nport in a # tail\n" in
        check Alcotest.int "one port" 1 (Design.n_ports d));
    tc "empty input rejected" (fun () ->
        Alcotest.check_raises "fail" (Failure "netlist: empty input") (fun () ->
            ignore (Netlist_io.of_string "# nothing\n")));
  ]

let stats_cases =
  [
    tc "stats fields" (fun () ->
        let s = Stats.of_design (small_design ()) in
        check Alcotest.int "regs" 1 s.Stats.registers;
        check Alcotest.int "comb" 1 s.Stats.combinational;
        check Alcotest.int "maxfo" 1 s.Stats.max_fanout);
  ]

(* ------------------------------------------------------------------ *)
(* Liberty                                                             *)

module Liberty = Mm_netlist.Liberty

let sample_lib = {|
/* a comment */
library (demo) {
  time_unit : "1ns";
  cell (AO21) {
    area : 2.0;
    pin (A) { direction : input; capacitance : 0.003; }
    pin (B) { direction : input; capacitance : 0.003; }
    pin (C) { direction : input; capacitance : 0.003; }
    pin (Z) {
      direction : output;
      function : "(A * B) + C";
      timing () { intrinsic_rise : 0.07; rise_resistance : 1.2; }
    }
  }
  cell (SDFFX) {
    ff (IQ, IQN) {
      clocked_on : "CK";
      next_state : "(D * !SE) + (SI * SE)";
    }
    pin (D)  { direction : input; capacitance : 0.002; }
    pin (SI) { direction : input; nextstate_type : scan_in; }
    pin (SE) { direction : input; nextstate_type : scan_enable; }
    pin (CK) { direction : input; clock : true; }
    pin (Q)  { direction : output; function : "IQ"; }
  }
}
|}

let liberty_cases =
  [
    tc "parses groups, comments and strings" (fun () ->
        match Liberty.parse_groups sample_lib with
        | [ lib ] ->
          check Alcotest.string "kind" "library" lib.Liberty.g_kind;
          check Alcotest.(list string) "args" [ "demo" ] lib.Liberty.g_args;
          check Alcotest.int "two cells" 2
            (List.length
               (List.filter (fun g -> g.Liberty.g_kind = "cell") lib.Liberty.g_groups))
        | _ -> Alcotest.fail "expected one library");
    tc "interprets a combinational cell" (fun () ->
        let lib = Liberty.load sample_lib in
        let ao = List.find (fun c -> c.Lib_cell.cell_name = "AO21") lib.Liberty.cells in
        check Alcotest.int "arcs" 3 (List.length (Lib_cell.comb_arcs ao));
        check (Alcotest.float 1e-9) "intrinsic" 0.07 ao.Lib_cell.intrinsic;
        check (Alcotest.float 1e-9) "drive" 1.2 ao.Lib_cell.drive_res;
        (* semantics: (A*B)+C *)
        match Lib_cell.function_of_output ao 3 with
        | Some f ->
          let env l i = List.nth l i in
          check tri "110" Logic.T (Logic.eval (env [ Logic.T; Logic.T; Logic.F ]) f);
          check tri "001" Logic.T (Logic.eval (env [ Logic.F; Logic.F; Logic.T ]) f);
          check tri "100" Logic.F (Logic.eval (env [ Logic.T; Logic.F; Logic.F ]) f)
        | None -> Alcotest.fail "no function");
    tc "interprets a scan flop" (fun () ->
        let lib = Liberty.load sample_lib in
        let ff = List.find (fun c -> c.Lib_cell.cell_name = "SDFFX") lib.Liberty.cells in
        match ff.Lib_cell.seq with
        | Some seq ->
          check Alcotest.int "clock pin CK" 3 seq.Lib_cell.clock_pin;
          check Alcotest.(list int) "data pins D SI SE" [ 0; 1; 2 ]
            (List.sort compare seq.Lib_cell.data_pins);
          check Alcotest.(list int) "q" [ 4 ] seq.Lib_cell.q_pins;
          check Alcotest.bool "scan_in role" true
            (ff.Lib_cell.pins.(1).Lib_cell.role = Lib_cell.Scan_in)
        | None -> Alcotest.fail "not sequential");
    tc "function parser operator forms" (fun () ->
        let names n = match n with "a" -> Some 0 | "b" -> Some 1 | _ -> None in
        let f = Liberty.parse_function ~names "a' + !b" in
        let env l i = List.nth l i in
        check tri "00" Logic.T (Logic.eval (env [ Logic.F; Logic.F ]) f);
        check tri "11" Logic.F (Logic.eval (env [ Logic.T; Logic.T ]) f);
        let g = Liberty.parse_function ~names "a b" in
        check tri "juxtaposition is and" Logic.T
          (Logic.eval (env [ Logic.T; Logic.T ]) g);
        let h = Liberty.parse_function ~names "a ^ b" in
        check tri "xor" Logic.T (Logic.eval (env [ Logic.T; Logic.F ]) h));
    tc "builtin library round trips semantically" (fun () ->
        let lib = Liberty.load (Liberty.builtin_liberty ()) in
        check Alcotest.int "all cells" (List.length Library.all)
          (List.length lib.Liberty.cells);
        List.iter
          (fun (orig : Lib_cell.t) ->
            let re =
              List.find
                (fun c -> c.Lib_cell.cell_name = orig.Lib_cell.cell_name)
                lib.Liberty.cells
            in
            check Alcotest.int
              (orig.Lib_cell.cell_name ^ " pins")
              (Array.length orig.Lib_cell.pins)
              (Array.length re.Lib_cell.pins);
            check Alcotest.bool
              (orig.Lib_cell.cell_name ^ " seq")
              (Lib_cell.is_sequential orig)
              (Lib_cell.is_sequential re);
            (* function semantics over all assignments of <=4 inputs *)
            List.iter
              (fun (o, f_orig) ->
                match Lib_cell.function_of_output re o with
                | None -> Alcotest.fail "lost function"
                | Some f_re ->
                  let support =
                    List.sort_uniq compare (Logic.support f_orig @ Logic.support f_re)
                  in
                  let k = List.length support in
                  for mask = 0 to (1 lsl k) - 1 do
                    let env i =
                      match List.find_index (( = ) i) support with
                      | Some pos ->
                        if mask land (1 lsl pos) <> 0 then Logic.T else Logic.F
                      | None -> Logic.X
                    in
                    check tri
                      (Printf.sprintf "%s out %d mask %d" orig.Lib_cell.cell_name o mask)
                      (Logic.eval env f_orig) (Logic.eval env f_re)
                  done)
              orig.Lib_cell.functions;
            (* sequential structure *)
            match orig.Lib_cell.seq, re.Lib_cell.seq with
            | Some a, Some b ->
              check Alcotest.int "clock pin" a.Lib_cell.clock_pin b.Lib_cell.clock_pin;
              check Alcotest.(list int) "data pins"
                (List.sort compare a.Lib_cell.data_pins)
                (List.sort compare b.Lib_cell.data_pins);
              check Alcotest.bool "edge" true (a.Lib_cell.clock_edge = b.Lib_cell.clock_edge);
              check (Alcotest.float 1e-9) "setup" a.Lib_cell.setup b.Lib_cell.setup
            | None, None -> ()
            | _ -> Alcotest.fail "seq mismatch")
          Library.all);
    tc "syntax errors are reported with lines" (fun () ->
        try
          ignore (Liberty.parse_groups "library (x) {
  cell (y) {
");
          Alcotest.fail "no error"
        with Liberty.Parse_error { line; _ } ->
          check Alcotest.bool "line recorded" true (line >= 2));
  ]

(* ------------------------------------------------------------------ *)
(* Verilog                                                             *)

module Verilog = Mm_netlist.Verilog

let sample_v = {|
// a pipeline
module top (clk, in1, out1);
  input clk, in1;
  output out1;
  wire n1, n2;
  INV u1 (.A(in1), .Z(n1));
  DFF r1 (.D(n1), .CP(clk), .Q(n2), .QN());
  BUF u2 (n2, out1);          // positional
  AND2 u3 (.A(n2), .B(1'b1), .Z());
endmodule
|}

let verilog_cases =
  [
    tc "reads named, positional, const and open connections" (fun () ->
        let d = Verilog.read sample_v in
        check Alcotest.int "ports" 3 (Design.n_ports d);
        (* INV DFF BUF AND2 + one tie cell *)
        check Alcotest.int "insts" 5 (Design.n_insts d);
        let q = Design.pin_of_name_exn d "r1/Q" in
        let fanout = List.map (Design.pin_name d) (Design.fanout_pins d q) in
        check Alcotest.bool "chain includes u2/A" true (List.mem "u2/A" fanout);
        (* tie cell feeds the AND2 B input *)
        let b = Design.pin_of_name_exn d "u3/B" in
        check Alcotest.bool "tied" true (Design.pin_net d b <> None));
    tc "assign lowers to a buffer" (fun () ->
        let d =
          Verilog.read
            "module t (a, b);\n input a;\n output b;\n assign b = a;\nendmodule\n"
        in
        check Alcotest.int "one buffer" 1 (Design.n_insts d));
    tc "unknown cell is a helpful error" (fun () ->
        try
          ignore (Verilog.read "module t (a);\ninput a;\nSUBMOD u (.x(a));\nendmodule");
          Alcotest.fail "no error"
        with Verilog.Error { msg; _ } ->
          check Alcotest.bool "mentions flattening" true
            (Str_probe.contains msg "flattened"));
    tc "top selection by name" (fun () ->
        let two =
          "module a (x);\ninput x;\nendmodule\nmodule b (y);\ninput y;\nendmodule\n"
        in
        let d = Verilog.read ~top:"a" two in
        check Alcotest.string "picked a" "a" (Design.design_name d);
        let d2 = Verilog.read two in
        check Alcotest.string "default last" "b" (Design.design_name d2));
    tc "write/read round trip preserves structure" (fun () ->
        let d = small_design () in
        let v = Verilog.write d in
        let d2 = Verilog.read v in
        check Alcotest.string "stats equal"
          (Stats.to_string (Stats.of_design d))
          (Stats.to_string (Stats.of_design d2));
        let q = Design.pin_of_name_exn d2 "r1/Q" in
        check Alcotest.(list string) "port connectivity" [ "out" ]
          (List.map (Design.pin_name d2) (Design.fanout_pins d2 q)));
    tc "generated design round trips through verilog" (fun () ->
        let design, _info =
          Mm_workload.Gen_design.generate
            { Mm_workload.Gen_design.default_params with seed = 78; regs_per_domain = 16 }
        in
        let d2 = Verilog.read (Verilog.write design) in
        (* Nets feeding several output ports come back with buffer
           insertions for the extra ports, so instance counts may grow
           but never shrink; registers and ports are exact. *)
        check Alcotest.bool "insts preserved" true
          (Design.n_insts d2 >= Design.n_insts design);
        check Alcotest.int "registers" (List.length (Design.registers design))
          (List.length (Design.registers d2));
        check Alcotest.int "ports" (Design.n_ports design) (Design.n_ports d2));
    tc "custom library lookup" (fun () ->
        let lib = Mm_netlist.Liberty.load sample_lib in
        let find name =
          List.find_opt
            (fun c -> c.Lib_cell.cell_name = name)
            lib.Mm_netlist.Liberty.cells
        in
        let d =
          Verilog.read ~lib:find
            "module t (a, b, c, z);\n input a, b, c;\n output z;\n\
             AO21 u (.A(a), .B(b), .C(c), .Z(z));\nendmodule"
        in
        check Alcotest.int "one inst" 1 (Design.n_insts d));
  ]

let () =
  Alcotest.run "mm_netlist"
    [
      "logic", logic_cases @ logic_props;
      "lib_cell", cell_cases;
      "wire_load", wlm_cases;
      "design", design_cases;
      "netlist_io", io_cases;
      "stats", stats_cases;
      "liberty", liberty_cases;
      "verilog", verilog_cases;
    ]
