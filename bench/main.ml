(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation, then runs one Bechamel micro-benchmark per
   artefact.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- tables  # reproduction tables only
     dune exec bench/main.exe -- bech    # bechamel probes only

   Absolute numbers differ from the paper (its designs are 100x larger
   and ran on proprietary multi-threaded tooling); the shapes — merge
   factors, STA runtime reduction, conformity — are the reproduction
   target. EXPERIMENTS.md records paper-vs-measured. *)

module Design = Mm_netlist.Design
module Mode = Mm_sdc.Mode
module Context = Mm_timing.Context
module Sta = Mm_timing.Sta
module Tab = Mm_util.Tab
module Stat = Mm_util.Stat
module Obs = Mm_util.Obs
module Metrics = Mm_util.Metrics
module Pc = Mm_workload.Paper_circuit
module Presets = Mm_workload.Presets
module Prelim = Mm_core.Prelim
module Refine = Mm_core.Refine
module Compare = Mm_core.Compare
module Merge_flow = Mm_core.Merge_flow
module Report = Mm_core.Report

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* One shared timer for every phase measurement: the Obs monotonic
   clock, i.e. the same clock the pipeline spans run on. *)
let time f =
  Gc.compact ();
  let t0 = Obs.Clock.now_ns () in
  let r = f () in
  r, Obs.Clock.elapsed_s t0

(* ------------------------------------------------------------------ *)
(* Table 1 and Figure 1: the example circuit and its relationships     *)

let table1 () =
  section "Table 1: timing relationships (Constraint Set 1, Figure 1 circuit)";
  let d = Pc.build () in
  let mode = Pc.constraint_set1 d in
  let ctx = Context.create d mode in
  let rels = Mm_core.Relation_prop.endpoint_relations ctx in
  Tab.print (Report.relations_table d rels)

(* ------------------------------------------------------------------ *)
(* Tables 2-4: the 3-pass comparison on Constraint Set 6               *)

let tables234 () =
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
  let sides =
    List.map
      (fun (m : Mode.t) ->
        {
          Compare.ctx = Context.create d m;
          rename = Prelim.rename_of prelim m.Mode.mode_name;
        })
      [ a; b ]
  in
  let merged_ctx = Context.create d prelim.Prelim.merged in
  let cmp = Compare.run ~individual:sides ~merged:merged_ctx () in
  section "Table 2: pass-1 timing relationship comparison (Constraint Set 6)";
  Tab.print (Report.pass1_table d cmp.Compare.pass1);
  section "Table 3: pass-2 timing relationship comparison";
  Tab.print (Report.pass2_table d cmp.Compare.pass2);
  section "Table 4: pass-3 timing relationship comparison";
  Tab.print (Report.pass3_table d cmp.Compare.pass3);
  Printf.printf "\nConstraints added to the merged mode (paper's CSTR1-3):\n%s\n"
    (Report.fixes_text d cmp.Compare.fixes)

(* ------------------------------------------------------------------ *)
(* Figure 2: the mergeability graph                                    *)

let figure2 () =
  section "Figure 2: mergeability graph and greedy cliques";
  (* A 9-mode suite in 3 families, mirroring the figure's M1-M3. *)
  let params =
    {
      Mm_workload.Gen_design.default_params with
      Mm_workload.Gen_design.seed = 33;
      regs_per_domain = 32;
      stages = 3;
      combo_depth = 2;
    }
  in
  let design, info = Mm_workload.Gen_design.generate params in
  let suite =
    {
      Mm_workload.Gen_modes.sp_seed = 34;
      families = [ 4; 3; 2 ];
      base_period = 2.0;
      scan_family = true;
    }
  in
  let modes = Mm_workload.Gen_modes.generate design info suite in
  let merg = Mm_core.Mergeability.analyze modes in
  print_string (Report.mergeability_text merg)

(* ------------------------------------------------------------------ *)
(* Tables 5 and 6: designs A-F                                         *)

type design_run = {
  dr_name : string;
  dr_paper : Presets.preset option;  (* paper columns, when a preset *)
  dr_cells : int;
  dr_flow : Merge_flow.result;
  dr_sta_ind : float;
  dr_sta_mrg : float;
  dr_conformity : float;
  dr_all_equivalent : bool;
}

let run_modes ~name ?paper design modes =
  let flow = Merge_flow.run modes in
  let ind_reports, sta_ind =
    time (fun () -> List.map (fun m -> Sta.analyze design m) modes)
  in
  let mrg_reports, sta_mrg =
    time (fun () ->
        List.map (fun m -> Sta.analyze design m) (Merge_flow.merged_modes flow))
  in
  let conformity =
    Sta.conformity ~individual:ind_reports ~merged:mrg_reports
      ~tolerance_frac:0.01
  in
  let all_equivalent =
    List.for_all
      (fun (g : Merge_flow.group) ->
        match g.Merge_flow.grp_equiv with
        | Some e -> e.Mm_core.Equiv.equivalent
        | None -> true)
      flow.Merge_flow.groups
  in
  {
    dr_name = name;
    dr_paper = paper;
    dr_cells = Design.n_insts design;
    dr_flow = flow;
    dr_sta_ind = sta_ind;
    dr_sta_mrg = sta_mrg;
    dr_conformity = conformity;
    dr_all_equivalent = all_equivalent;
  }

let run_design (p : Presets.preset) =
  let design, _info, modes = Presets.build p in
  run_modes ~name:p.Presets.pr_name ~paper:p design modes

(* ------------------------------------------------------------------ *)
(* BENCH_<run>.json: the committed bench trajectory. Table 5/6 numbers *)
(* per design plus the full observability snapshot (metric counters    *)
(* and per-stage span durations) of the run that produced them.        *)

(* One row of the domain-scaling sweep: the same workload merged and
   STA-swept at a fixed --jobs count. *)
type scaling_row = { sc_jobs : int; sc_merge_s : float; sc_sta_s : float }

let scaling_json ~design_name rows =
  let jf = Metrics.json_float in
  let base =
    match rows with r :: _ -> r.sc_merge_s | [] -> 0.0
  in
  let row r =
    Printf.sprintf
      {|{"jobs":%d,"merge_s":%s,"sta_s":%s,"merge_speedup":%s}|}
      r.sc_jobs (jf r.sc_merge_s) (jf r.sc_sta_s)
      (jf (if r.sc_merge_s > 0.0 then base /. r.sc_merge_s else 0.0))
  in
  Printf.sprintf {|{"design":"%s","runs":[%s]}|}
    (Metrics.json_escape design_name)
    (String.concat "," (List.map row rows))

(* The sweep itself: merge + per-mode STA at each jobs count. The
   workload and the results are identical at every point (the task
   graph is deterministic); only the wall clock moves. On a single
   hardware thread every point degenerates to sequential execution and
   the recorded speedup is honestly ~1.0. *)
let scaling_sweep ~jobs_list ~name design modes =
  section
    (Printf.sprintf "Scaling: %s merge + STA sweep vs worker domains" name);
  let t =
    Tab.create
      ~aligns:[ Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
      [ "Jobs"; "Merge (s)"; "STA sweep (s)"; "Merge speedup" ]
  in
  let rows =
    List.map
      (fun jobs ->
        let _, merge_s =
          time (fun () -> Merge_flow.run ~check_equivalence:false ~jobs modes)
        in
        let _, sta_s =
          time (fun () ->
              Mm_util.Pool.with_pool ~jobs @@ fun pool ->
              ignore (Sta.analyze_many ~pool design modes))
        in
        { sc_jobs = jobs; sc_merge_s = merge_s; sc_sta_s = sta_s })
      jobs_list
  in
  let base = match rows with r :: _ -> r.sc_merge_s | [] -> 0.0 in
  List.iter
    (fun r ->
      Tab.add_row t
        [
          string_of_int r.sc_jobs;
          Stat.fmt_time_s r.sc_merge_s;
          Stat.fmt_time_s r.sc_sta_s;
          Printf.sprintf "%.2fx"
            (if r.sc_merge_s > 0.0 then base /. r.sc_merge_s else 0.0);
        ])
    rows;
  Tab.print t;
  Printf.printf
    "(hardware threads available: %d; speedup saturates at that count)\n"
    (Domain.recommended_domain_count ());
  rows

let bench_json ~scaling ~sta ~service runs =
  let jf = Metrics.json_float in
  let b = Buffer.create 4096 in
  let row5 r =
    Printf.sprintf
      {|{"design":"%s","cells":%d,"n_individual":%d,"n_merged":%d,"reduction_percent":%s,"merge_runtime_s":%s}|}
      (Metrics.json_escape r.dr_name)
      r.dr_cells r.dr_flow.Merge_flow.n_individual
      r.dr_flow.Merge_flow.n_merged
      (jf r.dr_flow.Merge_flow.reduction_percent)
      (jf r.dr_flow.Merge_flow.runtime_s)
  in
  let row6 r =
    Printf.sprintf
      {|{"design":"%s","sta_individual_s":%s,"sta_merged_s":%s,"sta_reduction_percent":%s,"conformity":%s,"equivalent":%b,"quarantined":%d,"degraded_cliques":%d}|}
      (Metrics.json_escape r.dr_name)
      (jf r.dr_sta_ind) (jf r.dr_sta_mrg)
      (jf (Stat.reduction_percent r.dr_sta_ind r.dr_sta_mrg))
      (jf r.dr_conformity) r.dr_all_equivalent
      (List.length r.dr_flow.Merge_flow.quarantined)
      (List.length r.dr_flow.Merge_flow.degraded)
  in
  Buffer.add_string b {|{"schema":"modemerge-bench/1","run":"paper_tables",|};
  Buffer.add_string b
    (Printf.sprintf {|"table5":[%s],|}
       (String.concat "," (List.map row5 runs)));
  Buffer.add_string b
    (Printf.sprintf {|"table6":[%s],|}
       (String.concat "," (List.map row6 runs)));
  Buffer.add_string b
    (Printf.sprintf
       {|"summary":{"avg_reduction_percent":%s,"avg_sta_reduction_percent":%s,"avg_conformity":%s},|}
       (jf (Stat.mean (List.map (fun r -> r.dr_flow.Merge_flow.reduction_percent) runs)))
       (jf (Stat.mean (List.map (fun r -> Stat.reduction_percent r.dr_sta_ind r.dr_sta_mrg) runs)))
       (jf (Stat.mean (List.map (fun r -> r.dr_conformity) runs))));
  Buffer.add_string b (Printf.sprintf {|"scaling":%s,|} scaling);
  (* STA microbench section: the compiled-arena payoff (compile-once
     vs rebuild, full vs incremental re-analysis). "null" when the
     invoking target did not run the microbench. *)
  Buffer.add_string b (Printf.sprintf {|"sta":%s,|} sta);
  (* Merge-service section: cold vs warm-cache submit latency and
     queue throughput against an in-process daemon (DESIGN.md §16).
     "null" when the invoking target did not run the service bench. *)
  Buffer.add_string b (Printf.sprintf {|"service":%s,|} service);
  (* The flight recorder's resource sections: whole-run GC totals and
     the pool.* metric slice (new keys only — existing consumers of the
     bench json are unaffected). *)
  Buffer.add_string b
    (Printf.sprintf {|"gc":{%s},|}
       (String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf {|"%s":%s|} (Metrics.json_escape k) (jf v))
             (Obs.gc_totals ()))));
  let pool_items =
    List.filter
      (fun (i : Metrics.item) ->
        String.length i.Metrics.name >= 5
        && String.sub i.Metrics.name 0 5 = "pool.")
      (Metrics.snapshot ())
  in
  Buffer.add_string b
    (Printf.sprintf {|"pool":%s,|} (Metrics.json_of_items pool_items));
  (* Obs.metrics_json is {"metrics":...,"spans":...} — embed verbatim. *)
  Buffer.add_string b
    (Printf.sprintf {|"observability":%s}|} (Obs.metrics_json ()));
  Buffer.contents b

let bench_file = "BENCH_paper_tables.json"

let write_bench_json ?(file = bench_file) ?(sta = "null") ?(service = "null")
    ~scaling runs =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (bench_json ~scaling ~sta ~service runs);
      output_char oc '\n');
  Printf.printf "\nwrote %s\n" file;
  (* Every bench-json write also lands one flight-recorder history
     record under .modemerge/history/ (advisory: a read-only checkout
     must not fail the bench). *)
  try
    let r =
      Mm_util.Runlog.capture ~label:"bench" ~jobs:(Mm_util.Pool.default_jobs ())
        ()
    in
    Printf.printf "history record -> %s\n" (Mm_util.Runlog.append r)
  with _ -> ()

(* Mandatory keys the bench trajectory (and CI's @bench-smoke) relies
   on: a run that stops emitting one of these is a regression even if
   it exits 0. *)
let mandatory_keys =
  [
    {|"table5"|}; {|"table6"|}; {|"merge_runtime_s"|}; {|"conformity"|};
    {|"merge.cliques"|}; {|"sta.tags_propagated"|}; {|"spans"|};
    {|"sta.analyze"|}; {|"scaling"|}; {|"merge_speedup"|}; {|"sta":|};
    {|"gc":{|}; {|"gc.minor_words"|}; {|"pool":{|}; {|"pool.tasks_executed"|};
    {|"pool.occupancy"|}; {|"service":|};
  ]

let contains ~needle hay =
  let nh = String.length needle and lh = String.length hay in
  let rec go i = i + nh <= lh && (String.sub hay i nh = needle || go (i + 1)) in
  go 0

let validate_bench_json ?(file = bench_file) () =
  let ic = open_in file in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let missing = List.filter (fun k -> not (contains ~needle:k s)) mandatory_keys in
  if missing <> [] then begin
    Printf.eprintf "%s is missing mandatory keys: %s\n" file
      (String.concat ", " missing);
    exit 1
  end;
  Printf.printf "%s: all %d mandatory keys present\n" file
    (List.length mandatory_keys)

(* ------------------------------------------------------------------ *)
(* STA microbench: the compiled-arena payoff (DESIGN.md section 14).   *)
(* Two measurements per preset:                                        *)
(*   1. compile-once vs rebuild - overlaying K modes over one cached   *)
(*      skeleton vs recompiling the CSR arena for every mode;          *)
(*   2. full vs incremental - the refinement-loop shape: endpoint      *)
(*      relations re-derived after each appended false path, from      *)
(*      scratch vs through Context.with_exceptions + the pass-1        *)
(*      relation cache (dirty-cone re-propagation only).               *)
(* Results are recorded under "sta" in the bench json, and the run's   *)
(* sta.compile / sta.incremental_reuse spans land in the Runlog        *)
(* history record, so `modemerge perf check` gates their self-times.   *)

type sta_row = {
  st_name : string;
  st_pins : int;
  st_modes : int;  (* modes measured in the compile comparison *)
  st_rebuild_s : float;
  st_reuse_s : float;
  st_full_s : float;
  st_incr_s : float;
}

let sta_speedup a b = if b > 0.0 then a /. b else 0.0

let sta_measure (p : Presets.preset) =
  let design, _info, modes = Presets.build p in
  let k_modes = List.filteri (fun i _ -> i < 4) modes in
  (* 1: identical overlays, arena recompiled per mode (cache bypassed)
     vs compiled once and reused. *)
  let _, rebuild_s =
    time (fun () ->
        List.iter
          (fun m ->
            ignore (Mm_timing.Tgraph.overlay (Mm_timing.Tgraph.compile design) m))
          k_modes)
  in
  ignore (Mm_timing.Tgraph.build design (List.hd k_modes));
  let _, reuse_s =
    time (fun () ->
        List.iter (fun m -> ignore (Mm_timing.Tgraph.build design m)) k_modes)
  in
  (* 2: a growing-exception family over the first mode — exactly what
     the refinement loop replays. Variant i appends i false paths. *)
  let m0 = List.hd modes in
  let ctx0 = Context.create design m0 in
  let eps = Mm_timing.Graph.endpoint_pins ctx0.Context.graph in
  let clock0 = Mm_timing.Clock_prop.clock_name ctx0.Context.clocks 0 in
  let variant i =
    let excs =
      List.filteri (fun j _ -> j < i) eps
      |> List.map (fun ep ->
             Mode.exc ~from_:[ Mode.P_clock clock0 ] ~to_:[ Mode.P_pin ep ]
               Mode.False_path)
    in
    { m0 with Mode.exceptions = m0.Mode.exceptions @ excs }
  in
  let variants = List.init 5 variant in
  let full_last = ref [] in
  let _, full_s =
    time (fun () ->
        List.iter
          (fun m ->
            full_last :=
              Mm_core.Relation_prop.endpoint_relations (Context.create design m))
          variants)
  in
  let incr_last = ref [] in
  let _, incr_s =
    time (fun () ->
        let cache = Mm_core.Relation_prop.create_ep_cache () in
        List.iter
          (fun m ->
            let ctx = Context.with_exceptions ctx0 m in
            incr_last := Mm_core.Relation_prop.endpoint_relations_cached cache ctx)
          variants)
  in
  (* The speedup only counts if the answers agree. *)
  if !full_last <> !incr_last then begin
    Printf.eprintf
      "sta bench: incremental endpoint relations diverge from full recompute \
       on preset %s\n"
      p.Presets.pr_name;
    exit 1
  end;
  {
    st_name = p.Presets.pr_name;
    st_pins = Design.n_pins design;
    st_modes = List.length k_modes;
    st_rebuild_s = rebuild_s;
    st_reuse_s = reuse_s;
    st_full_s = full_s;
    st_incr_s = incr_s;
  }

let sta_json rows =
  let jf = Metrics.json_float in
  let row r =
    Printf.sprintf
      {|{"design":"%s","pins":%d,"modes":%d,"rebuild_s":%s,"reuse_s":%s,"compile_speedup":%s,"full_s":%s,"incremental_s":%s,"incremental_speedup":%s}|}
      (Metrics.json_escape r.st_name)
      r.st_pins r.st_modes (jf r.st_rebuild_s) (jf r.st_reuse_s)
      (jf (sta_speedup r.st_rebuild_s r.st_reuse_s))
      (jf r.st_full_s) (jf r.st_incr_s)
      (jf (sta_speedup r.st_full_s r.st_incr_s))
  in
  let min_of get =
    List.fold_left (fun acc r -> Float.min acc (get r)) infinity rows
  in
  Printf.sprintf
    {|{"rows":[%s],"summary":{"min_compile_speedup":%s,"min_incremental_speedup":%s}}|}
    (String.concat "," (List.map row rows))
    (jf (min_of (fun r -> sta_speedup r.st_rebuild_s r.st_reuse_s)))
    (jf (min_of (fun r -> sta_speedup r.st_full_s r.st_incr_s)))

let tables56 () =
  (* Tables 5/6 are the committed bench trajectory, so they run with
     tracing on and export the observability snapshot alongside. *)
  Obs.set_enabled true;
  Obs.reset ();
  Metrics.reset ();
  let runs = List.map run_design Presets.all in
  let paper r = Option.get r.dr_paper in
  section "Table 5: mode reduction and merging runtime (designs A-F)";
  Printf.printf
    "(sizes are the paper's designs scaled ~1:100; paper columns shown for \
     comparison)\n";
  let t5 =
    Tab.create
      ~aligns:
        [ Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
          Tab.Right; Tab.Right; Tab.Right ]
      [
        "Design"; "Cells"; "# Individual"; "# Merged"; "% Reduction";
        "Merge Runtime (s)"; "Paper # Ind"; "Paper # Mrg"; "Paper % Red";
      ]
  in
  List.iter
    (fun r ->
      let p = paper r in
      Tab.add_row t5
        [
          r.dr_name;
          string_of_int r.dr_cells;
          string_of_int r.dr_flow.Merge_flow.n_individual;
          string_of_int r.dr_flow.Merge_flow.n_merged;
          Stat.fmt_f1 r.dr_flow.Merge_flow.reduction_percent;
          Stat.fmt_time_s r.dr_flow.Merge_flow.runtime_s;
          string_of_int p.Presets.paper_modes;
          string_of_int p.Presets.paper_merged;
          Stat.fmt_f1 p.Presets.paper_reduction;
        ])
    runs;
  let avg get = Stat.mean (List.map get runs) in
  Tab.add_sep t5;
  Tab.add_row t5
    [
      "Average"; ""; ""; "";
      Stat.fmt_f1 (avg (fun r -> r.dr_flow.Merge_flow.reduction_percent));
      ""; ""; "";
      Stat.fmt_f1 (avg (fun r -> (paper r).Presets.paper_reduction));
    ];
  Tab.print t5;

  section "Table 6: overall STA runtime reduction and QoR of merged modes";
  let t6 =
    Tab.create
      ~aligns:
        [ Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
          Tab.Right; Tab.Right ]
      [
        "Design"; "STA Individual (s)"; "STA Merged (s)"; "% Reduction";
        "Conformity"; "Equivalent"; "Paper % Red"; "Paper Conf";
      ]
  in
  List.iter
    (fun r ->
      let p = paper r in
      Tab.add_row t6
        [
          r.dr_name;
          Stat.fmt_time_s r.dr_sta_ind;
          Stat.fmt_time_s r.dr_sta_mrg;
          Stat.fmt_f1 (Stat.reduction_percent r.dr_sta_ind r.dr_sta_mrg);
          Stat.fmt_f2 r.dr_conformity;
          string_of_bool r.dr_all_equivalent;
          Stat.fmt_f1 p.Presets.paper_sta_reduction;
          Stat.fmt_f2 p.Presets.paper_conformity;
        ])
    runs;
  Tab.add_sep t6;
  Tab.add_row t6
    [
      "Average"; ""; "";
      Stat.fmt_f1
        (Stat.mean
           (List.map
              (fun r -> Stat.reduction_percent r.dr_sta_ind r.dr_sta_mrg)
              runs));
      Stat.fmt_f2 (Stat.mean (List.map (fun r -> r.dr_conformity) runs));
      "";
      Stat.fmt_f1
        (Stat.mean (List.map (fun r -> (paper r).Presets.paper_sta_reduction) runs));
      Stat.fmt_f2
        (Stat.mean (List.map (fun r -> (paper r).Presets.paper_conformity) runs));
    ];
  Tab.print t6;
  (* Domain-scaling record for the committed trajectory: design A at
     1/2/4/8 worker domains. *)
  let pa = List.hd Presets.all in
  let design_a, _info, modes_a = Presets.build pa in
  let rows =
    scaling_sweep ~jobs_list:[ 1; 2; 4; 8 ] ~name:pa.Presets.pr_name design_a
      modes_a
  in
  write_bench_json
    ~scaling:(scaling_json ~design_name:pa.Presets.pr_name rows)
    ~sta:
      (sta_json
         (List.map sta_measure
            [ Presets.design_a; Presets.design_b; Presets.design_c ]))
    runs

(* ------------------------------------------------------------------ *)
(* Smoke run for @bench-smoke: the paper circuit's two-mode merge       *)
(* (Constraint Set 6), tracing on, BENCH json emitted and validated.    *)
(* Fast enough for every CI run, unlike the full A-F preset sweep.      *)

let smoke () =
  section "Bench smoke: paper circuit, Constraint Set 6, observability on";
  Obs.set_enabled true;
  Obs.reset ();
  Metrics.reset ();
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  let r = run_modes ~name:"paper_circuit" d [ a; b ] in
  Printf.printf "  merged %d -> %d mode(s), %.1f%% reduction, conformity %.2f\n"
    r.dr_flow.Merge_flow.n_individual r.dr_flow.Merge_flow.n_merged
    r.dr_flow.Merge_flow.reduction_percent r.dr_conformity;
  (* Mini scaling record (two points) so the smoke json carries every
     mandatory key; the full 1/2/4/8 sweep lives in the scaling target. *)
  let rows = scaling_sweep ~jobs_list:[ 1; 2 ] ~name:"paper_circuit" d [ a; b ] in
  write_bench_json ~scaling:(scaling_json ~design_name:"paper_circuit" rows)
    ~sta:(sta_json [ sta_measure Presets.tiny ])
    [ r ];
  validate_bench_json ()

(* ------------------------------------------------------------------ *)
(* Audit smoke for @audit-smoke: merge the paper circuit with the      *)
(* audit report enabled, check the jobs=1 and jobs=4 reports are       *)
(* byte-identical, write BENCH_audit.json and validate the mandatory   *)
(* schema keys — @bench-smoke's mirror for the provenance layer.       *)

let audit_file = "BENCH_audit.json"

let audit_smoke () =
  section "Audit smoke: paper circuit, Constraint Set 6, provenance audit";
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  let audit_at jobs =
    (* Counters feed the audit's coverage section; reset between runs
       so both job counts start from the same cumulative state. *)
    Metrics.reset ();
    Mm_core.Audit.to_json (Merge_flow.run ~jobs [ a; b ])
  in
  let j1 = audit_at 1 in
  let j4 = audit_at 4 in
  if j1 <> j4 then begin
    Printf.eprintf "audit reports differ between jobs=1 and jobs=4\n";
    exit 1
  end;
  let oc = open_out audit_file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc j1;
      output_char oc '\n');
  Printf.printf "wrote %s\n" audit_file;
  let missing =
    List.filter
      (fun k -> not (contains ~needle:(Printf.sprintf "%S" k) j1))
      Mm_core.Audit.mandatory_keys
  in
  if missing <> [] then begin
    Printf.eprintf "audit json missing mandatory keys: %s\n"
      (String.concat ", " missing);
    exit 1
  end;
  Printf.printf "  audit ok: %d bytes, jobs-invariant, all %d mandatory keys\n"
    (String.length j1)
    (List.length Mm_core.Audit.mandatory_keys)

(* ------------------------------------------------------------------ *)
(* Standalone scaling target: design A merged and STA-swept at         *)
(* 1/2/4/8 worker domains, recorded under "scaling" in the bench json.  *)

let scaling_target () =
  Obs.set_enabled true;
  Obs.reset ();
  Metrics.reset ();
  let pa = List.hd Presets.all in
  let design, _info, modes = Presets.build pa in
  let rows =
    scaling_sweep ~jobs_list:[ 1; 2; 4; 8 ] ~name:pa.Presets.pr_name design
      modes
  in
  let r = run_design pa in
  write_bench_json
    ~scaling:(scaling_json ~design_name:pa.Presets.pr_name rows)
    [ r ];
  validate_bench_json ()

(* ------------------------------------------------------------------ *)
(* STA microbench targets (measurement helpers live above tables56,    *)
(* which embeds their rows into the committed bench trajectory).       *)

let sta_table rows =
  let t =
    Tab.create
      ~aligns:
        [ Tab.Left; Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right;
          Tab.Right; Tab.Right; Tab.Right ]
      [
        "Design"; "Pins"; "Modes"; "Rebuild (s)"; "Reuse (s)"; "Compile x";
        "Full (s)"; "Incr (s)"; "Incr x";
      ]
  in
  List.iter
    (fun r ->
      Tab.add_row t
        [
          r.st_name;
          string_of_int r.st_pins;
          string_of_int r.st_modes;
          Stat.fmt_time_s r.st_rebuild_s;
          Stat.fmt_time_s r.st_reuse_s;
          Printf.sprintf "%.1fx" (sta_speedup r.st_rebuild_s r.st_reuse_s);
          Stat.fmt_time_s r.st_full_s;
          Stat.fmt_time_s r.st_incr_s;
          Printf.sprintf "%.1fx" (sta_speedup r.st_full_s r.st_incr_s);
        ])
    rows;
  Tab.print t

(* Full microbench over presets A-C, written into the paper-tables
   bench json (a paper-circuit merge provides the table5/6 and scaling
   payload). Gates the repeated-analysis acceptance bound: reusing the
   compiled skeleton must beat recompiling by at least 2x. *)
let sta_bench () =
  section "STA microbench: compile-once vs rebuild, full vs incremental (A-C)";
  Obs.set_enabled true;
  Obs.reset ();
  Metrics.reset ();
  let rows =
    List.map sta_measure
      [ Presets.design_a; Presets.design_b; Presets.design_c ]
  in
  sta_table rows;
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  let r = run_modes ~name:"paper_circuit" d [ a; b ] in
  let srows = scaling_sweep ~jobs_list:[ 1; 2 ] ~name:"paper_circuit" d [ a; b ] in
  write_bench_json
    ~scaling:(scaling_json ~design_name:"paper_circuit" srows)
    ~sta:(sta_json rows) [ r ];
  validate_bench_json ();
  let worst =
    List.fold_left
      (fun acc r -> Float.min acc (sta_speedup r.st_rebuild_s r.st_reuse_s))
      infinity rows
  in
  if worst < 2.0 then begin
    Printf.eprintf
      "sta bench: compile-once speedup %.2fx below the 2x repeated-analysis \
       bound\n"
      worst;
    exit 1
  end;
  Printf.printf
    "\nrepeated-analysis bound ok: worst compile-once speedup %.1fx (>= 2x)\n"
    worst

(* Tiny-preset variant for the default test gate: same code path,
   seconds not minutes, own output file so it cannot race
   @bench-smoke's write of the paper-tables json. *)
let sta_file = "BENCH_sta.json"

let sta_smoke () =
  section "STA microbench smoke: tiny preset";
  Obs.set_enabled true;
  Obs.reset ();
  Metrics.reset ();
  let rows = [ sta_measure Presets.tiny ] in
  sta_table rows;
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  let r = run_modes ~name:"paper_circuit" d [ a; b ] in
  let srows = scaling_sweep ~jobs_list:[ 1 ] ~name:"paper_circuit" d [ a; b ] in
  write_bench_json ~file:sta_file
    ~scaling:(scaling_json ~design_name:"paper_circuit" srows)
    ~sta:(sta_json rows) [ r ];
  validate_bench_json ~file:sta_file ()

(* ------------------------------------------------------------------ *)
(* Ablations: quantify the design choices DESIGN.md calls out          *)

let ablation_refinement () =
  section "Ablation 1: refinement off (paper section 3.2 disabled)";
  Printf.printf
    "Constraint Set 6 merged with preliminary merging only, then with \
     refinement:\n";
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  let prelim = Prelim.merge ~name:"A+B" [ a; b ] in
  let check label merged =
    let e =
      Mm_core.Equiv.check ~individual:[ a; b ]
        ~rename:(Prelim.rename_of prelim) ~merged ()
    in
    Printf.printf
      "  %-22s equivalent=%-5b mismatch buckets=%d remaining fixes=%d\n" label
      e.Mm_core.Equiv.equivalent e.Mm_core.Equiv.mismatches
      e.Mm_core.Equiv.remaining_fixes
  in
  check "preliminary only:" prelim.Prelim.merged;
  let refined = Refine.run ~prelim ~individual:[ a; b ] () in
  check "with refinement:" refined.Refine.refined

let ablation_uniquification () =
  section "Ablation 2: exception uniquification off (paper section 3.1.10)";
  let d = Pc.build () in
  let a, b = Pc.constraint_set4 d in
  let with_u = Prelim.merge ~name:"M" [ a; b ] in
  let without_u = Prelim.merge ~uniquify:false ~name:"M" [ a; b ] in
  Printf.printf
    "  with uniquification:    %d exception(s) kept, %d dropped, %d conflicts\n"
    (List.length with_u.Prelim.merged.Mode.exceptions)
    (List.length with_u.Prelim.dropped_exceptions)
    (List.length with_u.Prelim.conflicts);
  Printf.printf
    "  without uniquification: %d exception(s) kept, %d dropped, %d conflicts\n"
    (List.length without_u.Prelim.merged.Mode.exceptions)
    (List.length without_u.Prelim.dropped_exceptions)
    (List.length without_u.Prelim.conflicts);
  Printf.printf
    "  (the dropped MCP becomes a merge conflict: without 3.1.10 these two \
     modes cannot merge at all)\n"

let ablation_tolerance () =
  section "Ablation 3: tolerance sweep over the mergeability decision";
  (* Eight modes whose set_load values form a 1%%-per-step gradient:
     the tolerance limit directly controls the clique structure. *)
  let d = Pc.build () in
  let modes =
    List.init 8 (fun i ->
        let src =
          Printf.sprintf
            "create_clock -name c -period 10 [get_ports clk1]\nset_load %g [get_ports out1]"
            (0.0100 *. (1.01 ** float_of_int i))
        in
        (Mm_sdc.Resolve.mode_of_string d ~name:(Printf.sprintf "m%d" i) src)
          .Mm_sdc.Resolve.mode)
  in
  let t =
    Tab.create
      ~aligns:[ Tab.Right; Tab.Right; Tab.Right ]
      [ "Tolerance (rel)"; "Merged modes (greedy)"; "Merged modes (exact)" ]
  in
  List.iter
    (fun rel ->
      let tolerance = Mm_util.Toler.make ~rel () in
      let greedy =
        Mm_core.Mergeability.analyze ~tolerance ~strategy:Mm_core.Mergeability.Greedy
          modes
      in
      let exact =
        Mm_core.Mergeability.analyze ~tolerance ~strategy:Mm_core.Mergeability.Exact
          modes
      in
      Tab.add_row t
        [
          Printf.sprintf "%.3f" rel;
          string_of_int (List.length greedy.Mm_core.Mergeability.cliques);
          string_of_int (List.length exact.Mm_core.Mergeability.cliques);
        ])
    [ 0.0; 0.011; 0.022; 0.045; 0.08 ];
  Tab.print t;
  Printf.printf
    "(wider tolerance admits more value drift into one superset mode)\n"

let ablation_cliques () =
  section "Ablation 4: greedy vs exact clique cover on random graphs";
  let rng = Mm_util.Prng.create 4242 in
  let worse = ref 0 and total = ref 0 and gsum = ref 0 and esum = ref 0 in
  for _ = 1 to 200 do
    let n = 10 in
    let adj = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let e = Mm_util.Prng.int rng 100 < 55 in
        adj.(i).(j) <- e;
        adj.(j).(i) <- e
      done
    done;
    let g = List.length (Mm_core.Mergeability.greedy_cliques adj) in
    let e = List.length (Mm_core.Mergeability.exact_cliques adj) in
    incr total;
    gsum := !gsum + g;
    esum := !esum + e;
    if g > e then incr worse
  done;
  Printf.printf
    "  200 random 10-mode graphs (55%% edge density):\n\
    \  greedy avg cover %.2f, exact avg cover %.2f; greedy suboptimal on \
     %d/%d graphs\n"
    (float_of_int !gsum /. float_of_int !total)
    (float_of_int !esum /. float_of_int !total)
    !worse !total;
  Printf.printf
    "  (the paper's greedy choice costs little at realistic mode counts)\n"

let ablations () =
  ablation_refinement ();
  ablation_uniquification ();
  ablation_tolerance ();
  ablation_cliques ()

(* ------------------------------------------------------------------ *)
(* Scaling sweep: merge + STA cost vs design size (not a paper table;  *)
(* quantifies how the implementation scales toward the paper's sizes)  *)

let scale_sweep () =
  section "Scaling sweep: 3-mode merge and STA vs design size";
  let t =
    Tab.create
      ~aligns:[ Tab.Right; Tab.Right; Tab.Right; Tab.Right; Tab.Right ]
      [ "Cells"; "Pins"; "Merge (s)"; "STA individual (s)"; "STA merged (s)" ]
  in
  List.iter
    (fun regs ->
      let params =
        {
          Mm_workload.Gen_design.default_params with
          Mm_workload.Gen_design.seed = 900 + regs;
          n_domains = 4;
          regs_per_domain = regs;
          stages = 5;
          combo_depth = 5;
          n_config_pins = 8;
          n_clock_muxes = 2;
        }
      in
      let design, info = Mm_workload.Gen_design.generate params in
      let suite =
        {
          Mm_workload.Gen_modes.sp_seed = 901;
          families = [ 3 ];
          base_period = 1.0;
          scan_family = false;
        }
      in
      let modes = Mm_workload.Gen_modes.generate design info suite in
      let flow, t_merge = time (fun () -> Merge_flow.run modes) in
      let _, t_ind =
        time (fun () -> List.map (fun m -> Sta.analyze design m) modes)
      in
      let _, t_mrg =
        time (fun () ->
            List.map (fun m -> Sta.analyze design m) (Merge_flow.merged_modes flow))
      in
      Tab.add_row t
        [
          string_of_int (Design.n_insts design);
          string_of_int (Design.n_pins design);
          Stat.fmt_time_s t_merge;
          Stat.fmt_time_s t_ind;
          Stat.fmt_time_s t_mrg;
        ])
    [ 350; 700; 1400; 2800; 5600 ];
  Tab.print t;
  Printf.printf
    "(3 modes -> 1 at every size; both phases scale near-linearly in pins)
"

(* ------------------------------------------------------------------ *)
(* Bechamel probes: one Test.make per paper artefact                   *)

let bechamel_suite () =
  section "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  (* Pre-built inputs so Test.make measures the algorithm, not setup. *)
  let d = Pc.build () in
  let set1 = Pc.constraint_set1 d in
  let ctx1 = Context.create d set1 in
  let a6, b6 = Pc.constraint_set6 d in
  let prelim6 = Prelim.merge ~name:"A+B" [ a6; b6 ] in
  let sides6 =
    List.map
      (fun (m : Mode.t) ->
        {
          Compare.ctx = Context.create d m;
          rename = Prelim.rename_of prelim6 m.Mode.mode_name;
        })
      [ a6; b6 ]
  in
  let merged6 = Context.create d prelim6.Prelim.merged in
  let tiny_design, tiny_info, tiny_modes = Presets.build Presets.tiny in
  ignore tiny_info;
  let tiny_mode = List.hd tiny_modes in
  let tiny_ctx = Context.create tiny_design tiny_mode in
  let tests =
    [
      Test.make ~name:"table1_relation_propagation" (Staged.stage (fun () ->
          ignore (Mm_core.Relation_prop.endpoint_relations ctx1)));
      Test.make ~name:"table2_3_4_three_pass_compare" (Staged.stage (fun () ->
          ignore (Compare.run ~individual:sides6 ~merged:merged6 ())));
      Test.make ~name:"figure2_mergeability_cliques" (Staged.stage (fun () ->
          ignore (Mm_core.Mergeability.analyze tiny_modes)));
      Test.make ~name:"table5_merge_flow" (Staged.stage (fun () ->
          ignore (Merge_flow.run ~check_equivalence:false tiny_modes)));
      Test.make ~name:"table6_sta_analysis" (Staged.stage (fun () ->
          ignore (Sta.analyze ~ctx:tiny_ctx tiny_design tiny_mode)));
    ]
  in
  let measure = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let benchmark test =
    List.iter
      (fun elt ->
        let raw = Benchmark.run cfg [ measure ] elt in
        let result = Analyze.one ols measure raw in
        match Analyze.OLS.estimates result with
        | Some [ est ] ->
          Printf.printf "  %-42s %12.1f ns/run\n" (Test.Elt.name elt) est
        | Some _ | None ->
          Printf.printf "  %-42s (no estimate)\n" (Test.Elt.name elt))
      (Test.elements test)
  in
  List.iter benchmark tests

(* ------------------------------------------------------------------ *)
(* Merge-service bench: an in-process `modemerge daemon` fed the paper
   circuit over real HTTP. Three numbers, recorded under "service" in
   the bench json (and, via write_bench_json, the Runlog history):
     cold_submit_s     POST /jobs -> done, empty cache (pipeline runs)
     warm_submit_s     same spec again -> done (served from the cache)
     queue_jobs_per_s  K distinct jobs drained through the queue       *)

let service_measure () =
  let module Daemon = Mm_service.Daemon in
  let module Httpd = Mm_util.Httpd in
  let module Runlog = Mm_util.Runlog in
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  let design_text = Mm_netlist.Netlist_io.to_string d in
  let q s = Printf.sprintf {|"%s"|} (Metrics.json_escape s) in
  let spec salt =
    Printf.sprintf {|{"design":{"format":"nl","text":%s},"sources":[%s]}|}
      (q design_text)
      (String.concat ","
         (List.mapi
            (fun i m ->
              let text =
                Mm_sdc.Mode.to_sdc m
                ^ if salt = "" then "" else "# " ^ salt ^ "\n"
              in
              Printf.sprintf {|{"name":%s,"text":%s}|}
                (q (Printf.sprintf "set6_%c" (Char.chr (Char.code 'a' + i))))
                (q text))
            [ a; b ]))
  in
  let daemon = Daemon.start { Daemon.default_config with dc_queue_cap = 64 } in
  Fun.protect
    ~finally:(fun () -> Daemon.stop daemon)
    (fun () ->
      let port = Daemon.port daemon in
      let submit body =
        let status, _, reply = Httpd.request ~meth:"POST" ~body ~port "/jobs" in
        if status <> 200 && status <> 202 then
          failwith (Printf.sprintf "submit failed: %d %s" status reply);
        match Runlog.member "id" (Runlog.parse_json reply) with
        | Some (Runlog.Str id) -> id
        | _ -> failwith "submit reply carries no id"
      in
      let wait id =
        let rec poll () =
          let _, _, body =
            Httpd.request ~port (Printf.sprintf "/jobs/%s" id)
          in
          match Runlog.member "state" (Runlog.parse_json body) with
          | Some (Runlog.Str ("queued" | "running")) ->
            Unix.sleepf 0.002;
            poll ()
          | Some (Runlog.Str "done") -> ()
          | _ -> failwith (Printf.sprintf "job %s did not complete" id)
        in
        poll ()
      in
      let timed f =
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0
      in
      let body = spec "" in
      let cold_s = timed (fun () -> wait (submit body)) in
      let warm_s = timed (fun () -> wait (submit body)) in
      let queue_jobs = 8 in
      let queue_wall_s =
        timed (fun () ->
            let ids =
              List.init queue_jobs (fun i ->
                  submit (spec (Printf.sprintf "q%d" i)))
            in
            List.iter wait ids)
      in
      let jf = Metrics.json_float in
      Printf.printf
        "  cold submit %.4fs, warm (cache hit) %.4fs (%.0fx), %d queued jobs \
         in %.3fs (%.1f jobs/s)\n"
        cold_s warm_s
        (cold_s /. Float.max warm_s 1e-9)
        queue_jobs queue_wall_s
        (float_of_int queue_jobs /. queue_wall_s);
      Printf.sprintf
        {|{"cold_submit_s":%s,"warm_submit_s":%s,"warm_speedup":%s,"queue_jobs":%d,"queue_wall_s":%s,"queue_jobs_per_s":%s}|}
        (jf cold_s) (jf warm_s)
        (jf (cold_s /. Float.max warm_s 1e-9))
        queue_jobs (jf queue_wall_s)
        (jf (float_of_int queue_jobs /. queue_wall_s)))

let service_target () =
  section "Merge service: cold vs warm-cache latency, queue throughput";
  Obs.set_enabled true;
  Obs.reset ();
  Metrics.reset ();
  let service = service_measure () in
  let d = Pc.build () in
  let a, b = Pc.constraint_set6 d in
  let r = run_modes ~name:"paper_circuit" d [ a; b ] in
  let rows =
    scaling_sweep ~jobs_list:[ 1; 2 ] ~name:"paper_circuit" d [ a; b ]
  in
  write_bench_json
    ~scaling:(scaling_json ~design_name:"paper_circuit" rows)
    ~sta:(sta_json [ sta_measure Presets.tiny ])
    ~service [ r ];
  validate_bench_json ()

(* ------------------------------------------------------------------ *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let tables () =
    table1 ();
    tables234 ();
    figure2 ();
    tables56 ()
  in
  match what with
  | "tables" -> tables ()
  | "ablations" -> ablations ()
  | "scale" -> scale_sweep ()
  | "table1" -> table1 ()
  | "table2" | "table3" | "table4" | "walkthrough" -> tables234 ()
  | "figure2" -> figure2 ()
  | "table5" | "table6" -> tables56 ()
  | "smoke" -> smoke ()
  | "audit" -> audit_smoke ()
  | "sta" -> sta_bench ()
  | "sta-smoke" -> sta_smoke ()
  | "scaling" -> scaling_target ()
  | "service" -> service_target ()
  | "bech" -> bechamel_suite ()
  | "all" ->
    tables ();
    ablations ();
    bechamel_suite ()
  | other ->
    Printf.eprintf
      "unknown target %s (use \
       tables|table1|table2|figure2|table5|smoke|audit|scaling|service|ablations|scale|bech|all)\n"
      other;
    exit 1
